(* Tests for switching-logic synthesis: boxes, the hyperbox learner, the
   labeling oracle and the guard fixpoint, culminating in the Eq. 3
   reproduction check against the paper's reported guard intervals. *)

module Box = Switchsynth.Box
module Boxlearn = Switchsynth.Boxlearn
module Label = Switchsynth.Label
module Fixpoint = Switchsynth.Fixpoint
module TS = Switchsynth.Transmission_synth
module T = Hybrid.Transmission
module Mds = Hybrid.Mds
module Simulate = Hybrid.Simulate

(* ------------------------------------------------------------------ *)
(* Boxes                                                               *)
(* ------------------------------------------------------------------ *)

let test_box_mem () =
  let b = Box.make ~lo:[| 0.0; 10.0 |] ~hi:[| 5.0; 20.0 |] in
  Alcotest.(check bool) "inside" true (Box.mem b [| 2.0; 15.0 |]);
  Alcotest.(check bool) "boundary" true (Box.mem b [| 0.0; 20.0 |]);
  Alcotest.(check bool) "outside one dim" false (Box.mem b [| 6.0; 15.0 |]);
  Alcotest.(check bool) "empty has no members" false
    (Box.mem (Box.empty 2) [| 0.0; 0.0 |])

let test_box_segment_meets () =
  let b = Box.make ~lo:[| 0.0 |] ~hi:[| 0.0 |] in
  Alcotest.(check bool) "straddles point guard" true
    (Box.segment_meets b [| 0.01 |] [| -0.01 |]);
  Alcotest.(check bool) "misses" false
    (Box.segment_meets b [| 0.3 |] [| 0.1 |]);
  Alcotest.(check bool) "endpoint touch" true
    (Box.segment_meets b [| 0.2 |] [| 0.0 |]);
  let b2 = Box.make ~lo:[| 1.0; 1.0 |] ~hi:[| 2.0; 2.0 |] in
  Alcotest.(check bool) "2d meets" true
    (Box.segment_meets b2 [| 0.0; 0.0 |] [| 3.0; 3.0 |]);
  Alcotest.(check bool) "2d misses in one dim" false
    (Box.segment_meets b2 [| 0.0; 5.0 |] [| 3.0; 4.0 |])

let test_box_snap_equal () =
  let b = Box.make ~lo:[| 0.004 |] ~hi:[| 9.996 |] in
  let s = Box.snap ~grid:0.01 b in
  Alcotest.(check bool) "snapped" true
    (Box.equal s (Box.make ~lo:[| 0.0 |] ~hi:[| 10.0 |]));
  Alcotest.(check bool) "empties equal" true (Box.equal (Box.empty 1) (Box.empty 1));
  Alcotest.(check bool) "empty <> nonempty" false (Box.equal (Box.empty 1) s)

(* ------------------------------------------------------------------ *)
(* Hyperbox learning                                                   *)
(* ------------------------------------------------------------------ *)

let within01 = Box.make ~lo:[| 0.0 |] ~hi:[| 10.0 |]

let test_learn_recovers_interval () =
  let target p = 3.0 <= p.(0) && p.(0) <= 7.25 in
  match Boxlearn.learn ~grid:0.01 ~label:target ~within:within01 ~seed:[| 5.0 |] with
  | None -> Alcotest.fail "seed is positive"
  | Some b ->
    Alcotest.(check bool) "exact interval" true
      (Box.equal b (Box.make ~lo:[| 3.0 |] ~hi:[| 7.25 |]))

let test_learn_ignores_disjoint_pocket () =
  (* positives: [0, 1] u [5, 6]; seed in the right component *)
  let target p = (0.0 <= p.(0) && p.(0) <= 1.0) || (5.0 <= p.(0) && p.(0) <= 6.0) in
  match Boxlearn.learn ~grid:0.01 ~label:target ~within:within01 ~seed:[| 5.5 |] with
  | None -> Alcotest.fail "seed is positive"
  | Some b ->
    Alcotest.(check bool)
      (Format.asprintf "component only, got %a" Box.pp b)
      true
      (Box.equal b (Box.make ~lo:[| 5.0 |] ~hi:[| 6.0 |]))

let test_learn_negative_seed () =
  Alcotest.(check bool) "negative seed" true
    (Boxlearn.learn ~grid:0.01 ~label:(fun _ -> false) ~within:within01
       ~seed:[| 5.0 |]
    = None)

let test_learn_2d () =
  let target p = 1.0 <= p.(0) && p.(0) <= 2.0 && 3.0 <= p.(1) && p.(1) <= 8.0 in
  let within = Box.make ~lo:[| 0.0; 0.0 |] ~hi:[| 10.0; 10.0 |] in
  match Boxlearn.learn ~grid:0.1 ~label:target ~within ~seed:[| 1.5; 5.0 |] with
  | None -> Alcotest.fail "seed positive"
  | Some b ->
    Alcotest.(check bool) "2d box" true
      (Box.equal b (Box.make ~lo:[| 1.0; 3.0 |] ~hi:[| 2.0; 8.0 |]))

let test_find_seed () =
  let target p = 8.0 <= p.(0) && p.(0) <= 9.0 in
  (match
     Boxlearn.find_seed ~grid:0.01 ~coarse:0.5 ~label:target ~within:within01
       ~prefer:[| 2.0 |]
   with
  | Some p -> Alcotest.(check bool) "found in component" true (target p)
  | None -> Alcotest.fail "seed exists");
  Alcotest.(check bool) "no positive anywhere" true
    (Boxlearn.find_seed ~grid:0.01 ~coarse:0.5
       ~label:(fun _ -> false)
       ~within:within01 ~prefer:[| 2.0 |]
    = None)

let prop_learn_exact =
  let gen =
    QCheck2.Gen.(
      let pt = int_range 0 100 in
      let* a = pt and* b = pt in
      let lo = min a b and hi = max a b in
      let* seed = int_range lo hi in
      return (float_of_int lo /. 10., float_of_int hi /. 10., float_of_int seed /. 10.))
  in
  QCheck2.Test.make ~name:"learner recovers random grid intervals" ~count:200
    ~print:(fun (lo, hi, seed) -> Printf.sprintf "[%g, %g] seed %g" lo hi seed)
    gen
    (fun (lo, hi, seed) ->
      let target p = lo -. 1e-9 <= p.(0) && p.(0) <= hi +. 1e-9 in
      match
        Boxlearn.learn ~grid:0.1 ~label:target ~within:within01 ~seed:[| seed |]
      with
      | None -> false
      | Some b -> Box.equal ~eps:1e-6 b (Box.make ~lo:[| lo |] ~hi:[| hi |]))

(* ------------------------------------------------------------------ *)
(* Labeling on the transmission                                        *)
(* ------------------------------------------------------------------ *)

let overapprox_guards label =
  let lo, hi = T.initial_guard_overapprox label in
  Box.make ~lo:[| lo |] ~hi:[| hi |]

let cfg = (TS.problem ()).Fixpoint.config

let test_label_pointwise_unsafe () =
  (* entering G3U at omega = 10 violates phi_S at entry *)
  let g3u = Mds.mode_index T.system "G3U" in
  Alcotest.(check bool) "unsafe entry" false
    (Label.safe_entry cfg T.system ~guards:overapprox_guards ~mode:g3u [| 10.0 |])

let test_label_safe_entry () =
  let g3u = Mds.mode_index T.system "G3U" in
  Alcotest.(check bool) "peak entry safe" true
    (Label.safe_entry cfg T.system ~guards:overapprox_guards ~mode:g3u [| 30.0 |])

let test_label_depends_on_guards () =
  (* entering G1U at omega = 0 is safe only if some exit will open up *)
  let g1u = Mds.mode_index T.system "G1U" in
  let no_exit label =
    if label = "g12U" then Box.empty 1 else overapprox_guards label
  in
  Alcotest.(check bool) "no exit -> unsafe" false
    (Label.safe_entry cfg T.system ~guards:no_exit ~mode:g1u [| 0.0 |]);
  Alcotest.(check bool) "with exit -> safe" true
    (Label.safe_entry cfg T.system ~guards:overapprox_guards ~mode:g1u [| 0.0 |])

(* ------------------------------------------------------------------ *)
(* Eq. 3 reproduction                                                  *)
(* ------------------------------------------------------------------ *)

let eq3 = lazy (TS.synthesize ())

let test_eq3_converges () =
  let r = Lazy.force eq3 in
  Alcotest.(check bool) "converged" true r.Fixpoint.converged;
  Alcotest.(check bool) "few iterations" true (r.Fixpoint.iterations <= 5)

let test_eq3_matches_paper () =
  let r = Lazy.force eq3 in
  List.iter
    (fun (label, (lo, hi)) ->
      let b = Fixpoint.guard_fn r label in
      if Box.is_empty b then Alcotest.failf "%s came out empty" label;
      let ok v w = abs_float (v -. w) <= 0.011 in
      if not (ok b.Box.lo.(0) lo && ok b.Box.hi.(0) hi) then
        Alcotest.failf "%s: got %a, paper says [%.2f, %.2f]" label Box.pp b lo
          hi)
    TS.paper_eq3

let test_eq3_guards_are_safe () =
  (* soundness spot-check: points inside synthesized guards re-label safe *)
  let r = Lazy.force eq3 in
  Array.iter
    (fun (tr : Mds.transition) ->
      let b = Fixpoint.guard_fn r tr.Mds.label in
      if not (Box.is_empty b) then
        List.iter
          (fun f ->
            let p = [| b.Box.lo.(0) +. (f *. (b.Box.hi.(0) -. b.Box.lo.(0))) |] in
            Alcotest.(check bool)
              (Printf.sprintf "%s at %.2f safe" tr.Mds.label p.(0))
              true
              (Label.safe_entry cfg T.system ~guards:(Fixpoint.guard_fn r)
                 ~mode:tr.Mds.dst p))
          [ 0.0; 0.5; 1.0 ])
    T.system.Mds.transitions

let test_eq4_shrinks_eq3 () =
  let r3 = Lazy.force eq3 in
  let r4 = TS.synthesize ~dwell:5.0 () in
  Alcotest.(check bool) "converged" true r4.Fixpoint.converged;
  List.iter
    (fun (label, b4) ->
      let b3 = Fixpoint.guard_fn r3 label in
      if not (Box.is_empty b4) then begin
        Alcotest.(check bool)
          (Printf.sprintf "%s: dwell guard inside safety guard" label)
          true
          (b3.Box.lo.(0) -. 1e-9 <= b4.Box.lo.(0)
          && b4.Box.hi.(0) <= b3.Box.hi.(0) +. 1e-9)
      end)
    r4.Fixpoint.guards;
  (* the guards the paper reports that our dwell semantics also yields *)
  List.iter
    (fun label ->
      let lo, hi = List.assoc label TS.paper_eq4 in
      let b = Fixpoint.guard_fn r4 label in
      let ok v w = abs_float (v -. w) <= 0.02 in
      if not (ok b.Box.lo.(0) lo && ok b.Box.hi.(0) hi) then
        Alcotest.failf "%s: got %a, paper says [%.2f, %.2f]" label Box.pp b lo hi)
    [ "g12U"; "g22U"; "g33U"; "g32D"; "g21D"; "g11D" ]

let test_fig10_trace () =
  (* Fig. 10: the synthesized switching logic drives the system through
     all six gears with eta >= 0.5 whenever omega >= 5 *)
  let r = TS.synthesize ~dwell:5.0 () in
  (* guards are permissions to switch; the Fig. 10 behaviour accelerates
     to the top of the g33D band before engaging the downshift *)
  let guard label y =
    let b = Fixpoint.guard_fn r label in
    if label = "g33D" then y.(1) >= b.Box.hi.(0) -. 0.1 && y.(1) <= b.Box.hi.(0)
    else Box.mem b [| y.(1) |]
  in
  let run =
    Simulate.run_policy T.system ~guard
      ~plan:[ "gN1U"; "g12U"; "g23U"; "g33D"; "g32D"; "g21D" ]
      ~min_dwell:5.0 ~sample_every:0.1 ~dt:0.01 ~max_time:300.0 [| 0.0; 0.0 |]
  in
  let samples = run.Simulate.samples in
  (match run.Simulate.outcome with
  | `Completed -> ()
  | `Unsafe -> Alcotest.fail "trajectory left the safe set"
  | `Timeout -> Alcotest.fail "plan did not complete");
  let top_speed =
    List.fold_left (fun m (s : Simulate.sample) -> max m s.Simulate.state.(1)) 0.0 samples
  in
  Alcotest.(check bool)
    (Printf.sprintf "reaches third gear speeds (top=%.1f)" top_speed)
    true (top_speed > 30.0);
  let modes_seen =
    List.sort_uniq compare (List.map (fun (s : Simulate.sample) -> s.Simulate.mode) samples)
  in
  Alcotest.(check bool) "visits at least 6 modes" true
    (List.length modes_seen >= 6)

(* ------------------------------------------------------------------ *)
(* Thermostat: a case study with closed-form guards                    *)
(* ------------------------------------------------------------------ *)

module Th = Hybrid.Thermostat
module ThS = Switchsynth.Thermostat_synth

let check_guards r expected_pairs tol =
  List.iter
    (fun (label, (lo, hi)) ->
      let b = Fixpoint.guard_fn r label in
      if Box.is_empty b then Alcotest.failf "%s empty" label;
      if
        abs_float (b.Box.lo.(0) -. lo) > tol
        || abs_float (b.Box.hi.(0) -. hi) > tol
      then
        Alcotest.failf "%s: got %a, closed form [%.4f, %.4f]" label Box.pp b lo
          hi)
    expected_pairs

let test_thermostat_no_dwell () =
  let r = ThS.synthesize () in
  Alcotest.(check bool) "converged" true r.Fixpoint.converged;
  check_guards r [ ("gOn", (18.0, 22.0)); ("gOff", (18.0, 22.0)) ] 1e-9

let test_thermostat_matches_closed_form () =
  List.iter
    (fun dwell ->
      let r = ThS.synthesize ~dwell () in
      check_guards r (ThS.expected ~dwell) 0.011)
    [ 5.0; 10.0 ]

let test_thermostat_closed_form_sanity () =
  Alcotest.(check (float 1e-9)) "dwell 0 lower" 18.0
    (Th.expected_off_guard_lo ~dwell:0.0);
  Alcotest.(check (float 1e-9)) "dwell 0 upper" 22.0
    (Th.expected_on_guard_hi ~dwell:0.0);
  Alcotest.(check bool) "guards shrink with dwell" true
    (Th.expected_off_guard_lo ~dwell:10.0 > Th.expected_off_guard_lo ~dwell:5.0
    && Th.expected_on_guard_hi ~dwell:10.0 < Th.expected_on_guard_hi ~dwell:5.0)

let test_thermostat_closed_loop () =
  (* bang-bang under the synthesized dwell-5 guards: always safe, and
     every dwell really is at least 5 seconds *)
  let dwell = 5.0 in
  let r = ThS.synthesize ~dwell () in
  let guard label y = Box.mem (Fixpoint.guard_fn r label) [| y.(0) |] in
  let plan = List.concat (List.init 8 (fun _ -> [ "gOn"; "gOff" ])) in
  let run =
    Simulate.run_policy Th.system ~guard ~plan ~min_dwell:dwell
      ~sample_every:0.5 ~dt:0.01 ~max_time:2000.0 [| 20.0 |]
  in
  (match run.Simulate.outcome with
  | `Completed -> ()
  | `Unsafe -> Alcotest.fail "left the safe band"
  | `Timeout -> Alcotest.fail "did not complete the plan");
  List.iter
    (fun (s : Simulate.sample) ->
      let x = s.Simulate.state.(0) in
      if x < Th.t_lo -. 1e-6 || x > Th.t_hi +. 1e-6 then
        Alcotest.failf "temperature %.3f out of band" x)
    run.Simulate.samples;
  let rec check_gaps = function
    | (a : Simulate.switch) :: (b : Simulate.switch) :: rest ->
      if b.Simulate.switch_time -. a.Simulate.switch_time < dwell -. 1e-6 then
        Alcotest.failf "dwell violated between %s and %s" a.Simulate.label
          b.Simulate.label;
      check_gaps (b :: rest)
    | _ -> ()
  in
  check_gaps run.Simulate.switches

(* ------------------------------------------------------------------ *)
(* Optimal switching (Section 6 / EMSOFT 2011 direction)               *)
(* ------------------------------------------------------------------ *)

module Optimal = Switchsynth.Optimal

let full_plan = [ "gN1U"; "g12U"; "g23U"; "g33D"; "g32D"; "g21D"; "g1ND" ]

let test_optimal_improves_baseline () =
  let guards = Lazy.force eq3 in
  List.iter
    (fun obj ->
      let r = Optimal.optimize guards ~plan:full_plan ~dwell:0.0 obj in
      Alcotest.(check bool) "finite cost" true (r.Optimal.cost < infinity);
      Alcotest.(check bool) "no worse than first-opportunity" true
        (r.Optimal.cost <= r.Optimal.baseline_cost +. 1e-9))
    [ Optimal.Minimize_time; Optimal.Maximize_mean_efficiency ]

let test_optimal_finds_crossover_speeds () =
  (* the efficiency-optimal upshift points are the analytic crossovers
     eta_1 = eta_2 at omega = 15 and eta_2 = eta_3 at omega = 25 *)
  let guards = Lazy.force eq3 in
  let r =
    Optimal.optimize guards ~plan:full_plan ~dwell:0.0
      Optimal.Maximize_mean_efficiency
  in
  let theta label = List.assoc label r.Optimal.policy in
  Alcotest.(check bool)
    (Printf.sprintf "g12U threshold %.2f near 15" (theta "g12U"))
    true
    (abs_float (theta "g12U" -. 15.0) < 0.5);
  Alcotest.(check bool)
    (Printf.sprintf "g23U threshold %.2f near 25" (theta "g23U"))
    true
    (abs_float (theta "g23U" -. 25.0) < 0.5)

let test_optimal_thresholds_inside_guards () =
  let guards = Lazy.force eq3 in
  let r =
    Optimal.optimize guards ~plan:full_plan ~dwell:0.0 Optimal.Minimize_time
  in
  List.iter
    (fun (label, theta) ->
      let b = Fixpoint.guard_fn guards label in
      Alcotest.(check bool)
        (Printf.sprintf "%s threshold inside guard" label)
        true
        (b.Box.lo.(0) -. 1e-9 <= theta && theta <= b.Box.hi.(0) +. 1e-9))
    r.Optimal.policy

let test_optimal_policy_runs_safely () =
  let guards = Lazy.force eq3 in
  let r =
    Optimal.optimize guards ~plan:full_plan ~dwell:0.0 Optimal.Minimize_time
  in
  let c =
    Optimal.cost_of_policy guards ~plan:full_plan ~dwell:0.0
      Optimal.Minimize_time r.Optimal.policy
  in
  Alcotest.(check bool) "re-simulates to the same finite cost" true
    (abs_float (c -. r.Optimal.cost) < 1e-9)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "switchsynth"
    [
      ( "box",
        [
          Alcotest.test_case "membership" `Quick test_box_mem;
          Alcotest.test_case "segment crossing" `Quick test_box_segment_meets;
          Alcotest.test_case "snap and equality" `Quick test_box_snap_equal;
        ] );
      ( "boxlearn",
        [
          Alcotest.test_case "recovers an interval" `Quick
            test_learn_recovers_interval;
          Alcotest.test_case "ignores disjoint pockets" `Quick
            test_learn_ignores_disjoint_pocket;
          Alcotest.test_case "negative seed" `Quick test_learn_negative_seed;
          Alcotest.test_case "2-D box" `Quick test_learn_2d;
          Alcotest.test_case "seed finding" `Quick test_find_seed;
        ]
        @ qsuite [ prop_learn_exact ] );
      ( "label",
        [
          Alcotest.test_case "pointwise unsafe entry" `Quick
            test_label_pointwise_unsafe;
          Alcotest.test_case "safe entry at peak" `Quick test_label_safe_entry;
          Alcotest.test_case "labels depend on current guards" `Quick
            test_label_depends_on_guards;
        ] );
      ( "eq3",
        [
          Alcotest.test_case "fixpoint converges" `Quick test_eq3_converges;
          Alcotest.test_case "guards match the paper (Eq. 3)" `Quick
            test_eq3_matches_paper;
          Alcotest.test_case "synthesized guards re-label safe" `Quick
            test_eq3_guards_are_safe;
        ] );
      ( "eq4-fig10",
        [
          Alcotest.test_case "dwell shrinks guards; matches paper subset"
            `Quick test_eq4_shrinks_eq3;
          Alcotest.test_case "Fig. 10 trace through all gears" `Quick
            test_fig10_trace;
        ] );
      ( "thermostat",
        [
          Alcotest.test_case "no dwell: full safe band" `Quick
            test_thermostat_no_dwell;
          Alcotest.test_case "matches the closed-form guards" `Quick
            test_thermostat_matches_closed_form;
          Alcotest.test_case "closed-form sanity" `Quick
            test_thermostat_closed_form_sanity;
          Alcotest.test_case "closed loop safe with real dwells" `Quick
            test_thermostat_closed_loop;
        ] );
      ( "optimal",
        [
          Alcotest.test_case "improves on first-opportunity" `Quick
            test_optimal_improves_baseline;
          Alcotest.test_case "finds the crossover speeds" `Quick
            test_optimal_finds_crossover_speeds;
          Alcotest.test_case "thresholds stay inside guards" `Quick
            test_optimal_thresholds_inside_guards;
          Alcotest.test_case "policy re-simulates safely" `Quick
            test_optimal_policy_runs_safely;
        ] );
    ]
