(* Switching logic synthesis for the 3-gear automatic transmission
   (Section 5 / Figs. 9-10).

   Run with:  dune exec examples/transmission.exe [dwell-seconds]

   Synthesizes safe switching guards by hyperbox learning against the
   numerical simulator, prints them next to the paper's Eq. 3 / Eq. 4
   values, then drives the closed-loop system through all six gears and
   renders the Fig. 10 speed/efficiency trace as ASCII. *)

module T = Hybrid.Transmission
module Simulate = Hybrid.Simulate
module Box = Switchsynth.Box
module Fixpoint = Switchsynth.Fixpoint
module TS = Switchsynth.Transmission_synth

let () =
  let dwell =
    if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 5.0
  in
  Format.printf "Synthesizing guards (safety only, Eq. 3)...@.";
  let eq3 = TS.synthesize () in
  Format.printf "  converged in %d iterations, %d simulator queries@.@."
    eq3.Fixpoint.iterations eq3.Fixpoint.labels_queried;
  Format.printf "%-6s %-22s %s@." "guard" "synthesized" "paper (Eq. 3)";
  List.iter
    (fun (label, b) ->
      let lo, hi = List.assoc label TS.paper_eq3 in
      Format.printf "%-6s %-22s [%.2f, %.2f]@." label
        (Format.asprintf "%a" Box.pp1 b)
        lo hi)
    eq3.Fixpoint.guards;

  Format.printf "@.Synthesizing with a %.0fs dwell requirement (Eq. 4)...@."
    dwell;
  let eq4 = TS.synthesize ~dwell () in
  Format.printf "%-6s %-22s %s@." "guard" "synthesized" "paper (Eq. 4)";
  List.iter
    (fun (label, b) ->
      let lo, hi = List.assoc label TS.paper_eq4 in
      Format.printf "%-6s %-22s [%.2f, %.2f]@." label
        (Format.asprintf "%a" Box.pp1 b)
        lo hi)
    eq4.Fixpoint.guards;

  (* Fig. 10: run the closed loop through the gear cycle *)
  Format.printf "@.Fig. 10 trace (dwell %.0fs policy):@." dwell;
  let guard label y =
    let b = Fixpoint.guard_fn eq4 label in
    if label = "g33D" then
      (* accelerate to the top of the band before downshifting *)
      y.(1) >= b.Box.hi.(0) -. 0.1 && y.(1) <= b.Box.hi.(0)
    else if label = "g1ND" then y.(1) <= 0.02 (* come to rest *)
    else Box.mem b [| y.(1) |]
  in
  let run =
    Simulate.run_policy T.system ~guard
      ~plan:[ "gN1U"; "g12U"; "g23U"; "g33D"; "g32D"; "g21D"; "g1ND" ]
      ~min_dwell:dwell ~sample_every:2.0 ~dt:0.01 ~max_time:300.0
      [| 0.0; 0.0 |]
  in
  let samples = run.Simulate.samples and outcome = run.Simulate.outcome in
  Format.printf "%-8s %-5s %-8s %-6s speed@." "t (s)" "mode" "omega" "eta";
  List.iter
    (fun (s : Simulate.sample) ->
      let mode = T.system.Hybrid.Mds.modes.(s.Simulate.mode).Hybrid.Mds.name in
      let omega = s.Simulate.state.(1) in
      let gear =
        match mode with
        | "G1U" | "G1D" -> 1
        | "G2U" | "G2D" -> 2
        | "G3U" | "G3D" -> 3
        | _ -> 0
      in
      let eta = if gear = 0 then 0.0 else T.eta gear omega in
      Format.printf "%-8.1f %-5s %-8.2f %-6.2f %s@." s.Simulate.time mode omega
        eta
        (String.make (int_of_float omega) '*'))
    samples;
  (match outcome with
  | `Completed ->
    let last = List.nth samples (List.length samples - 1) in
    Format.printf
      "@.completed the gear cycle: distance theta = %.0f, speed omega = %.2f@."
      last.Simulate.state.(0)
      last.Simulate.state.(1)
  | `Unsafe -> Format.printf "!! trajectory left the safe set@."
  | `Timeout -> Format.printf "!! plan did not complete@.");
  (* check the safety property along the whole trace *)
  let violations =
    List.filter
      (fun (s : Simulate.sample) ->
        not (T.system.Hybrid.Mds.safe s.Simulate.mode s.Simulate.state))
      samples
  in
  Format.printf "phi_S violations along the trace: %d@." (List.length violations)
