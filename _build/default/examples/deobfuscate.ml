(* Deobfuscation as oracle-guided re-synthesis (Section 4 / Fig. 8).

   Run with:  dune exec examples/deobfuscate.exe [width]

   Treats the two obfuscated programs of Fig. 8 purely as I/O oracles and
   re-synthesizes clean straight-line versions, then verifies the results
   equivalent to their specifications with an SMT query — the "structure
   hypothesis testing" of Section 6. *)

module Bv = Smt.Bv
module B = Prog.Benchmarks

let line () = Format.printf "%s@." (String.make 66 '-')

let show_source title p =
  Format.printf "@.%s@.%a@." title Prog.Lang.pp p

let deobfuscate name obfuscated library spec_fn =
  line ();
  show_source (Printf.sprintf "Obfuscated %s:" name) obfuscated;
  match Ogis.Deobfuscate.run ~library obfuscated with
  | Error _ -> Format.printf "!! synthesis failed@."
  | Ok r ->
    Format.printf "@.Re-synthesized in %.3fs (%d oracle queries):@.%a@."
      r.Ogis.Deobfuscate.seconds
      r.Ogis.Deobfuscate.stats.Ogis.Synth.oracle_queries Ogis.Straightline.pp
      r.Ogis.Deobfuscate.clean;
    let spec =
      {
        Ogis.Encode.width = obfuscated.Prog.Lang.width;
        ninputs = List.length obfuscated.Prog.Lang.inputs;
        noutputs = List.length obfuscated.Prog.Lang.outputs;
        library;
      }
    in
    (match Ogis.Synth.verify_against spec r.Ogis.Deobfuscate.clean ~spec_fn with
    | Ok () -> Format.printf "verified equivalent to the specification.@."
    | Error cex ->
      Format.printf "!! differs from the spec on input %s@."
        (String.concat "," (List.map string_of_int cex)))

let () =
  let width =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 8
  in
  Format.printf "Fig. 8 deobfuscation benchmarks at width %d@." width;
  deobfuscate "P1 (interchange)"
    (B.interchange_obs_w ~width)
    Ogis.Component.fig8_p1
    (function [ s; d ] -> [ d; s ] | _ -> assert false);
  deobfuscate "P2 (multiply by 45)"
    (B.multiply45_obs_w ~width)
    Ogis.Component.fig8_p2
    (function
      | [ y ] -> [ Bv.bmul y (Bv.const ~width 45) ]
      | _ -> assert false)
