examples/quickstart.mli:
