examples/verification.ml: Format Invgen List Lstar Mc String
