examples/deobfuscate.mli:
