examples/verification.mli:
