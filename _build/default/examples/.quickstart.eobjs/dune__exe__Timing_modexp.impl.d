examples/timing_modexp.ml: Array Format Gametime List Microarch Option Prog String Sys
