examples/deobfuscate.ml: Array Format List Ogis Printf Prog Smt String Sys
