examples/transmission.mli:
