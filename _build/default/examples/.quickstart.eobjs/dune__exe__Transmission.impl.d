examples/transmission.ml: Array Format Hybrid List String Switchsynth Sys
