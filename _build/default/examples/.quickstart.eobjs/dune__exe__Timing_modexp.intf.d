examples/timing_modexp.mli:
