examples/quickstart.ml: Format Ogis Sciduction Smt
