(** Per-path symbolic execution.

    Walks the edges of a single CFG path maintaining a substitution from
    program variables to terms over the program's {e input} variables, and
    accumulates the path condition. Uninitialized non-input variables read
    as 0, matching the concrete interpreter. *)

type result = {
  path_condition : Smt.Bv.formula;
  final : (string * Smt.Bv.term) list;
      (** symbolic value of every assigned variable at path exit *)
}

val exec : Lang.t -> Cfg.t -> Paths.path -> result

val output_terms : Lang.t -> result -> (string * Smt.Bv.term) list
(** Symbolic value of each program output at path exit. *)
