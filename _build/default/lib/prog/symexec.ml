module Bv = Smt.Bv
module Smap = Map.Make (String)

type result = {
  path_condition : Bv.formula;
  final : (string * Bv.term) list;
}

let exec (p : Lang.t) (g : Cfg.t) path =
  let width = p.Lang.width in
  let is_input x = List.mem x p.Lang.inputs in
  let lookup store x =
    match Smap.find_opt x store with
    | Some t -> Some t
    | None -> Some (if is_input x then Bv.var ~width x else Bv.const ~width 0)
  in
  let step (store, pc) edge_id =
    let e = g.Cfg.edges.(edge_id) in
    match e.Cfg.label with
    | Cfg.Skip -> (store, pc)
    | Cfg.Guard f -> (store, Bv.fand pc (Bv.subst (lookup store) f))
    | Cfg.Assign (x, rhs) ->
      (Smap.add x (Bv.subst_term (lookup store) rhs) store, pc)
  in
  let store, pc = List.fold_left step (Smap.empty, Bv.tru) path in
  { path_condition = pc; final = Smap.bindings store }

let output_terms (p : Lang.t) r =
  let width = p.Lang.width in
  List.map
    (fun x ->
      let t =
        match List.assoc_opt x r.final with
        | Some t -> t
        | None ->
          if List.mem x p.Lang.inputs then Bv.var ~width x else Bv.const ~width 0
      in
      (x, t))
    p.Lang.outputs
