(** Control-flow graphs of loop-free programs.

    Nodes are integers; every CFG has a unique entry and exit. Edges carry
    the program semantics: an assignment, a guard (branch condition or
    assumption), or a skip (join) edge. The edge set is the coordinate
    space for GameTime's path vectors. *)

type label =
  | Assign of string * Smt.Bv.term
  | Guard of Smt.Bv.formula
  | Skip

type edge = { id : int; src : int; dst : int; label : label }

type t = {
  nnodes : int;
  entry : int;
  exit_ : int;
  edges : edge array; (** indexed by [id] *)
  succ : edge list array; (** outgoing edges per node *)
}

val of_program : Lang.t -> t
(** Raises [Invalid_argument] if the program still contains loops. *)

val num_edges : t -> int
val pp : Format.formatter -> t -> unit
