module Bv = Smt.Bv

type stmt =
  | Assign of string * Bv.term
  | If of Bv.formula * stmt list * stmt list
  | While of Bv.formula * stmt list
  | Assume of Bv.formula

type t = {
  name : string;
  width : int;
  inputs : string list;
  outputs : string list;
  body : stmt list;
}

let rec check_stmt width = function
  | Assign (_, e) ->
    if Bv.width e <> width then
      invalid_arg
        (Printf.sprintf "Lang.make: expression of width %d in width-%d program"
           (Bv.width e) width)
  | If (_, a, b) ->
    List.iter (check_stmt width) a;
    List.iter (check_stmt width) b
  | While (_, body) -> List.iter (check_stmt width) body
  | Assume _ -> ()

let make ~name ~width ~inputs ~outputs body =
  List.iter (check_stmt width) body;
  { name; width; inputs; outputs; body }

let rec assigned_in acc = function
  | Assign (x, _) -> x :: acc
  | If (_, a, b) -> List.fold_left assigned_in (List.fold_left assigned_in acc a) b
  | While (_, body) -> List.fold_left assigned_in acc body
  | Assume _ -> acc

let assigned_vars stmts =
  List.sort_uniq compare (List.fold_left assigned_in [] stmts)

let rec stmt_loop_free = function
  | Assign _ | Assume _ -> true
  | If (_, a, b) -> List.for_all stmt_loop_free a && List.for_all stmt_loop_free b
  | While _ -> false

let is_loop_free p = List.for_all stmt_loop_free p.body

let rec pp_stmt fmt = function
  | Assign (x, e) -> Format.fprintf fmt "%s := %a;" x Bv.pp_term e
  | Assume f -> Format.fprintf fmt "assume %a;" Bv.pp f
  | If (c, a, []) ->
    Format.fprintf fmt "@[<v 2>if %a {@,%a@]@,}" Bv.pp c pp_block a
  | If (c, a, b) ->
    Format.fprintf fmt "@[<v 2>if %a {@,%a@]@,@[<v 2>} else {@,%a@]@,}" Bv.pp c
      pp_block a pp_block b
  | While (c, body) ->
    Format.fprintf fmt "@[<v 2>while %a {@,%a@]@,}" Bv.pp c pp_block body

and pp_block fmt stmts =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt fmt stmts

let pp fmt p =
  Format.fprintf fmt "@[<v 2>%s(%s) -> (%s) {@,%a@]@,}" p.name
    (String.concat ", " p.inputs)
    (String.concat ", " p.outputs)
    pp_block p.body
