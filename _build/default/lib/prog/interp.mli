(** Concrete interpreter.

    Executes a program on an input valuation and returns the values of its
    output variables. This is the I/O oracle of Section 4: the obfuscated
    program is only ever observed through [run]. *)

exception Assumption_failed
exception Out_of_fuel

val run :
  ?fuel:int -> Lang.t -> (string * int) list -> (string * int) list
(** [run p inputs] executes [p]; unspecified inputs default to 0. [fuel]
    bounds the total number of loop-iterations taken (default 10_000).
    Returns output bindings in the order of [p.outputs]. *)

val run_fn : Lang.t -> (string * int) list -> (string * int) list
(** [run] with the default fuel — convenient as a first-class oracle. *)

val trace_branches : ?fuel:int -> Lang.t -> (string * int) list -> bool list
(** Branch outcomes (in execution order) of a run; used in tests to relate
    concrete runs to CFG paths. *)
