module Bv = Smt.Bv

let w16 = 16

let v name = Bv.var ~width:w16 name
let c value = Bv.const ~width:w16 value

let toy =
  (* Fig. 4: while(!flag) { flag = 1; x++; }  x += 2; *)
  Lang.make ~name:"toy" ~width:w16 ~inputs:[ "flag"; "x" ] ~outputs:[ "x" ]
    [
      Lang.While
        ( Bv.eq (v "flag") (c 0),
          [
            Lang.Assign ("flag", c 1);
            Lang.Assign ("x", Bv.badd (v "x") (c 1));
          ] );
      Lang.Assign ("x", Bv.badd (v "x") (c 2));
    ]

let modulus = 251

let modexp ?(bits = 8) () =
  (* square-and-multiply, LSB first:
       result = 1; b = base mod n;
       for i in 0..bits-1:
         if (exp >> i) & 1 = 1 then result = result * b mod n;
         b = b * b mod n *)
  let mulmod a b = Bv.burem (Bv.bmul a b) (c modulus) in
  Lang.make
    ~name:(Printf.sprintf "modexp%d" bits)
    ~width:w16 ~inputs:[ "base"; "exp" ] ~outputs:[ "result" ]
    [
      Lang.Assign ("result", c 1);
      Lang.Assign ("b", Bv.burem (v "base") (c modulus));
      Lang.Assign ("i", c 0);
      Lang.While
        ( Bv.ult (v "i") (c bits),
          [
            Lang.If
              ( Bv.eq (Bv.band (Bv.blshr (v "exp") (v "i")) (c 1)) (c 1),
                [ Lang.Assign ("result", mulmod (v "result") (v "b")) ],
                [] );
            Lang.Assign ("b", mulmod (v "b") (v "b"));
            Lang.Assign ("i", Bv.badd (v "i") (c 1));
          ] );
    ]

let modexp_reference ?(bits = 8) ~base ~exp () =
  let exp = exp land ((1 lsl bits) - 1) in
  let rec go acc b e =
    if e = 0 then acc
    else
      let acc = if e land 1 = 1 then acc * b mod modulus else acc in
      go acc (b * b mod modulus) (e lsr 1)
  in
  go 1 (base mod modulus) exp

let bitcount ?(bits = 4) () =
  Lang.make
    ~name:(Printf.sprintf "bitcount%d" bits)
    ~width:w16 ~inputs:[ "x" ] ~outputs:[ "n" ]
    [
      Lang.Assign ("n", c 0);
      Lang.Assign ("i", c 0);
      Lang.While
        ( Bv.ult (v "i") (c bits),
          [
            Lang.If
              ( Bv.eq (Bv.band (Bv.blshr (v "x") (v "i")) (c 1)) (c 1),
                [ Lang.Assign ("n", Bv.badd (v "n") (c 1)) ],
                [] );
            Lang.Assign ("i", Bv.badd (v "i") (c 1));
          ] );
    ]

(* ---- Fig. 8, P1: interchange ---- *)

let interchange_obs_w ~width =
  let v name = Bv.var ~width name in
  let x_or a b = Bv.bxor (v a) (v b) in
  (* Transcribed from the paper, with the early returns rewritten as
     explicit else-branches (the trailing two xors are the fall-through
     tail, duplicated where the original falls out of the conditionals). *)
  let tail =
    [
      Lang.Assign ("dest", x_or "src" "dest");
      Lang.Assign ("src", x_or "src" "dest");
    ]
  in
  Lang.make ~name:"interchangeObs" ~width ~inputs:[ "src"; "dest" ]
    ~outputs:[ "src"; "dest" ]
    [
      Lang.Assign ("src", x_or "src" "dest");
      Lang.If
        ( Bv.eq (v "src") (x_or "src" "dest"),
          [
            Lang.Assign ("src", x_or "src" "dest");
            Lang.If
              ( Bv.eq (v "src") (x_or "src" "dest"),
                [
                  Lang.Assign ("dest", x_or "src" "dest");
                  Lang.If
                    ( Bv.eq (v "dest") (x_or "src" "dest"),
                      [ Lang.Assign ("src", x_or "dest" "src") ],
                      [
                        Lang.Assign ("src", x_or "src" "dest");
                        Lang.Assign ("dest", x_or "src" "dest");
                      ] );
                ],
                Lang.Assign ("src", x_or "src" "dest") :: tail );
          ],
          tail );
    ]

let interchange_w ~width =
  let x_or a b = Bv.bxor (Bv.var ~width a) (Bv.var ~width b) in
  Lang.make ~name:"interchange" ~width ~inputs:[ "src"; "dest" ]
    ~outputs:[ "src"; "dest" ]
    [
      Lang.Assign ("dest", x_or "src" "dest");
      Lang.Assign ("src", x_or "src" "dest");
      Lang.Assign ("dest", x_or "src" "dest");
    ]

(* ---- Fig. 8, P2: multiply by 45 ---- *)

let multiply45_obs_w ~width =
  let v name = Bv.var ~width name in
  let c value = Bv.const ~width value in
  (* a, b, c act as one-bit flags driving a 4-phase loop:
       phase 1: z = y<<2        phase 2: y = z+y   (y := 5y)
       phase 3: z = y<<3        phase 4: y = z+y   (y := 45y), break.
     The paper's `~` on flags is logical negation; `break` is modelled
     with a `done` flag. *)
  let toggle x = Lang.Assign (x, Bv.ite (Bv.eq (v x) (c 0)) (c 1) (c 0)) in
  Lang.make ~name:"multiply45Obs" ~width ~inputs:[ "y" ] ~outputs:[ "y" ]
    [
      Lang.Assign ("a", c 1);
      Lang.Assign ("b", c 0);
      Lang.Assign ("z", c 1);
      Lang.Assign ("cf", c 0);
      Lang.Assign ("done_", c 0);
      Lang.While
        ( Bv.eq (v "done_") (c 0),
          [
            Lang.If
              ( Bv.eq (v "a") (c 0),
                [
                  Lang.If
                    ( Bv.eq (v "b") (c 0),
                      [
                        Lang.Assign ("y", Bv.badd (v "z") (v "y"));
                        toggle "a";
                        toggle "b";
                        toggle "cf";
                        Lang.If
                          ( Bv.eq (v "cf") (c 0),
                            [ Lang.Assign ("done_", c 1) ],
                            [] );
                      ],
                      [
                        Lang.Assign ("z", Bv.badd (v "z") (v "y"));
                        toggle "a";
                        toggle "b";
                        toggle "cf";
                        Lang.If
                          ( Bv.eq (v "cf") (c 0),
                            [ Lang.Assign ("done_", c 1) ],
                            [] );
                      ] );
                ],
                [
                  Lang.If
                    ( Bv.eq (v "b") (c 0),
                      [ Lang.Assign ("z", Bv.bshl (v "y") (c 2)); toggle "a" ],
                      [
                        Lang.Assign ("z", Bv.bshl (v "y") (c 3));
                        toggle "a";
                        toggle "b";
                      ] );
                ] );
          ] );
    ]

let multiply45_w ~width =
  let v name = Bv.var ~width name in
  let c value = Bv.const ~width value in
  Lang.make ~name:"multiply45" ~width ~inputs:[ "y" ] ~outputs:[ "y" ]
    [
      Lang.Assign ("z", Bv.bshl (v "y") (c 2));
      Lang.Assign ("y", Bv.badd (v "z") (v "y"));
      Lang.Assign ("z", Bv.bshl (v "y") (c 3));
      Lang.Assign ("y", Bv.badd (v "z") (v "y"));
    ]

let interchange_obs = interchange_obs_w ~width:w16
let interchange = interchange_w ~width:w16
let multiply45_obs = multiply45_obs_w ~width:w16
let multiply45 = multiply45_w ~width:w16

let deceptive ?(bits = 4) () =
  (* Each iteration branches: the syntactically long arm does three cheap
     additions; the short arm one expensive division of the input [d]
     (expected to be pinned to a large value, so the divider's iterative
     latency is path-independent). A structural longest-path WCET
     heuristic picks the wrong arms; GameTime's measurement-based model
     does not. *)
  Lang.make
    ~name:(Printf.sprintf "deceptive%d" bits)
    ~width:w16 ~inputs:[ "x"; "d" ] ~outputs:[ "acc" ]
    [
      Lang.Assign ("acc", c 0);
      Lang.Assign ("i", c 0);
      Lang.While
        ( Bv.ult (v "i") (c bits),
          [
            Lang.If
              ( Bv.eq (Bv.band (Bv.blshr (v "x") (v "i")) (c 1)) (c 1),
                [
                  Lang.Assign ("acc", Bv.badd (v "acc") (c 1));
                  Lang.Assign ("acc", Bv.badd (v "acc") (c 2));
                  Lang.Assign ("acc", Bv.badd (v "acc") (c 3));
                ],
                [ Lang.Assign ("acc", Bv.badd (v "acc") (Bv.budiv (v "d") (c 3))) ] );
            Lang.Assign ("i", Bv.badd (v "i") (c 1));
          ] );
    ]
