(** The example programs used throughout the paper.

    - [toy] is the illustrative program of Fig. 4;
    - [modexp] is the modular-exponentiation kernel whose execution-time
      distribution GameTime reproduces in Fig. 6;
    - [interchange_obs]/[interchange] and [multiply45_obs]/[multiply45]
      are the two deobfuscation benchmarks of Fig. 8 (obfuscated original
      and expected clean version);
    - [bitcount] is a small modexp-shaped kernel used to keep unit tests
      fast. *)

val toy : Lang.t
(** [while (!flag) { flag = 1; x++ }; x += 2] over inputs [flag], [x]. *)

val modexp : ?bits:int -> unit -> Lang.t
(** Square-and-multiply [base^exp mod 251] with a [bits]-bit exponent
    (default 8, giving the paper's 256 paths). Inputs [base], [exp];
    output [result]. Loop bound for unrolling = [bits]. *)

val modexp_reference : ?bits:int -> base:int -> exp:int -> unit -> int
(** Ground-truth modexp used to validate the program. *)

val bitcount : ?bits:int -> unit -> Lang.t
(** Counts set bits of input [x] over [bits] iterations (default 4). *)

val interchange_obs : Lang.t
(** Fig. 8, P1: the obfuscated XOR-based swap. Inputs/outputs [src],
    [dest]. *)

val interchange : Lang.t
(** Fig. 8, P1: expected clean 3-statement swap. *)

val multiply45_obs : Lang.t
(** Fig. 8, P2: obfuscated multiply-by-45 (flag-driven loop). Input [y],
    output [y]. *)

val multiply45 : Lang.t
(** Fig. 8, P2: expected clean shift/add version. *)

(** Width-parametric variants of the Fig. 8 programs: the paper's
    benchmarks are word-level, so the same programs are meaningful at any
    width (tests use width 8 to keep the SMT queries small; the benchmark
    harness uses the full 16 bits). *)

val interchange_obs_w : width:int -> Lang.t
val interchange_w : width:int -> Lang.t
val multiply45_obs_w : width:int -> Lang.t
val multiply45_w : width:int -> Lang.t

val deceptive : ?bits:int -> unit -> Lang.t
(** A kernel whose syntactically longer branch arm is the cheaper one
    (three adds vs one iterative division): defeats structural WCET
    heuristics but not measurement-based GameTime. Input [x] selects the
    arm per iteration via its low [bits] bits (default 4). *)
