(** Loop unrolling.

    GameTime's first step (Fig. 5 of the paper): unroll every loop to a
    maximum iteration bound so the control-flow graph becomes a DAG. Paths
    that would iterate beyond the bound are cut with an [Assume] of the
    negated loop condition. *)

val unroll : bound:int -> Lang.t -> Lang.t
(** The result is loop-free; [Lang.is_loop_free] holds on it. *)
