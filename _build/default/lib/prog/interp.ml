module Bv = Smt.Bv

exception Assumption_failed
exception Out_of_fuel

type state = {
  store : (string, int) Hashtbl.t;
  mutable fuel : int;
  mutable branches : bool list; (* reverse order *)
}

let env_of_store store =
  {
    Bv.bv =
      (fun name -> match Hashtbl.find_opt store name with Some v -> v | None -> 0);
    Bv.bool = (fun _ -> false);
  }

let rec exec st stmt =
  match stmt with
  | Lang.Assign (x, e) ->
    Hashtbl.replace st.store x (Bv.eval_term (env_of_store st.store) e)
  | Lang.Assume f ->
    if not (Bv.eval (env_of_store st.store) f) then raise Assumption_failed
  | Lang.If (c, a, b) ->
    let taken = Bv.eval (env_of_store st.store) c in
    st.branches <- taken :: st.branches;
    List.iter (exec st) (if taken then a else b)
  | Lang.While (c, body) ->
    let taken = Bv.eval (env_of_store st.store) c in
    st.branches <- taken :: st.branches;
    if taken then begin
      if st.fuel <= 0 then raise Out_of_fuel;
      st.fuel <- st.fuel - 1;
      List.iter (exec st) body;
      exec st stmt
    end

let start ?(fuel = 10_000) (p : Lang.t) inputs =
  let st = { store = Hashtbl.create 16; fuel; branches = [] } in
  List.iter
    (fun x ->
      let v = Option.value (List.assoc_opt x inputs) ~default:0 in
      Hashtbl.replace st.store x (Bv.truncate ~width:p.Lang.width v))
    p.Lang.inputs;
  List.iter (exec st) p.Lang.body;
  st

let run ?fuel (p : Lang.t) inputs =
  let st = start ?fuel p inputs in
  List.map
    (fun x ->
      (x, Option.value (Hashtbl.find_opt st.store x) ~default:0))
    p.Lang.outputs

let run_fn p inputs = run p inputs

let trace_branches ?fuel p inputs =
  let st = start ?fuel p inputs in
  List.rev st.branches
