(** Concrete syntax for the program language.

    A small self-contained lexer and recursive-descent parser, plus a
    printer whose output parses back to the same program, so programs can
    live in files and be fed to the CLI tools. The grammar:

    {v
program NAME (in1, in2) -> (out1) width 16 {
  x := 1;
  while (i < 8) {
    if ((e >> i) & 1 == 1) { x := (x * b) % 251; } else { skip; }
    i := i + 1;
  }
  assume (x <= 255);
}
    v}

    Expression operators, loosest to tightest:
    [|], [^], [&], [<<] [>>] [>>>], [+] [-], [*] [/] [%], unary [~] [-].
    Comparisons ([==] [!=] [<] [<=] [>] [>=], signed [<s] [<=s]) combine
    with [&&], [||], [!]. Line comments start with [//]. *)

exception Parse_error of { line : int; message : string }

val parse : string -> Lang.t
(** Raises {!Parse_error} with a 1-based line number on bad input. *)

val parse_file : string -> Lang.t

val print : Format.formatter -> Lang.t -> unit
(** Emits the concrete syntax; [parse (print p)] reconstructs [p]. *)

val to_string : Lang.t -> string
