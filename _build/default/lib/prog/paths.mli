(** Source-to-sink paths of a CFG DAG.

    A path is a list of edge ids from entry to exit; its {e vector} is the
    0/1 edge-indicator vector in R^m used by GameTime's basis-path
    machinery. *)

type path = int list

val enumerate : Cfg.t -> path Seq.t
(** All structural entry→exit paths, lazily, in DFS order. *)

val count : Cfg.t -> int
(** Number of structural paths (by dynamic programming, no enumeration). *)

val vector : Cfg.t -> path -> int array
val of_vector : Cfg.t -> int array -> path option
(** Reconstruct a path from an indicator vector, if one exists. *)

val pp : Format.formatter -> path -> unit
