module Bv = Smt.Bv

let rec unroll_stmt bound = function
  | Lang.While (c, body) ->
    let rec go n =
      if n = 0 then [ Lang.Assume (Bv.fnot c) ]
      else
        [ Lang.If (c, List.concat_map (unroll_stmt bound) body @ go (n - 1), []) ]
    in
    go bound
  | Lang.If (c, a, b) ->
    [
      Lang.If
        (c, List.concat_map (unroll_stmt bound) a,
         List.concat_map (unroll_stmt bound) b);
    ]
  | (Lang.Assign _ | Lang.Assume _) as s -> [ s ]

let unroll ~bound (p : Lang.t) =
  if bound < 0 then invalid_arg "Unroll.unroll: negative bound";
  { p with Lang.body = List.concat_map (unroll_stmt bound) p.Lang.body }
