module Bv = Smt.Bv
module Solver = Smt.Solver

let feasible ?(assuming = Bv.tru) (p : Lang.t) g path =
  let r = Symexec.exec p g path in
  match Solver.check_formulas [ assuming; r.Symexec.path_condition ] with
  | Error () -> None
  | Ok env -> Some (List.map (fun x -> (x, env.Bv.bv x)) p.Lang.inputs)

let check_drives (p : Lang.t) g path inputs =
  let r = Symexec.exec p g path in
  Bv.eval (Bv.env_of_alist inputs) r.Symexec.path_condition
