(** A small imperative bit-vector language.

    This is the program substrate shared by the GameTime timing analysis
    (Section 3 of the paper) and the deobfuscation oracle of Section 4.
    Expressions are {!Smt.Bv} terms over program variables, so concrete
    interpretation, symbolic execution and SMT encoding all share one
    expression semantics. *)

type stmt =
  | Assign of string * Smt.Bv.term
  | If of Smt.Bv.formula * stmt list * stmt list
  | While of Smt.Bv.formula * stmt list
  | Assume of Smt.Bv.formula
      (** Blocks execution when false; introduced by loop unrolling to cut
          paths beyond the iteration bound. *)

type t = {
  name : string;
  width : int;  (** width of every variable in the program *)
  inputs : string list;
  outputs : string list;
  body : stmt list;
}

val make :
  name:string -> width:int -> inputs:string list -> outputs:string list ->
  stmt list -> t
(** Checks that every expression in the body has the program width. *)

val assigned_vars : stmt list -> string list
val is_loop_free : t -> bool
val pp : Format.formatter -> t -> unit
