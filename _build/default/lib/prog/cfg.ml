module Bv = Smt.Bv

type label =
  | Assign of string * Bv.term
  | Guard of Bv.formula
  | Skip

type edge = { id : int; src : int; dst : int; label : label }

type t = {
  nnodes : int;
  entry : int;
  exit_ : int;
  edges : edge array;
  succ : edge list array;
}

type builder = {
  mutable next_node : int;
  mutable acc : edge list; (* reverse order *)
  mutable next_edge : int;
}

let new_node b =
  let n = b.next_node in
  b.next_node <- n + 1;
  n

let add_edge b src dst label =
  b.acc <- { id = b.next_edge; src; dst; label } :: b.acc;
  b.next_edge <- b.next_edge + 1

(* returns the node at which control resumes after the statement *)
let rec build_stmt b entry = function
  | Lang.Assign (x, e) ->
    let n = new_node b in
    add_edge b entry n (Assign (x, e));
    n
  | Lang.Assume f ->
    let n = new_node b in
    add_edge b entry n (Guard f);
    n
  | Lang.If (c, then_, else_) ->
    let nt = new_node b in
    add_edge b entry nt (Guard c);
    let jt = build_block b nt then_ in
    let ne = new_node b in
    add_edge b entry ne (Guard (Bv.fnot c));
    let je = build_block b ne else_ in
    let join = new_node b in
    add_edge b jt join Skip;
    add_edge b je join Skip;
    join
  | Lang.While _ -> invalid_arg "Cfg.of_program: program contains a loop"

and build_block b entry stmts = List.fold_left (build_stmt b) entry stmts

let of_program (p : Lang.t) =
  let b = { next_node = 0; acc = []; next_edge = 0 } in
  let entry = new_node b in
  let exit_ = build_block b entry p.Lang.body in
  let edges = Array.of_list (List.rev b.acc) in
  Array.iteri (fun i e -> assert (e.id = i)) edges;
  let succ = Array.make b.next_node [] in
  Array.iter (fun e -> succ.(e.src) <- e :: succ.(e.src)) edges;
  (* restore source order of outgoing edges *)
  Array.iteri (fun i es -> succ.(i) <- List.rev es) succ;
  { nnodes = b.next_node; entry; exit_; edges; succ }

let num_edges g = Array.length g.edges

let pp_label fmt = function
  | Assign (x, e) -> Format.fprintf fmt "%s := %a" x Bv.pp_term e
  | Guard f -> Format.fprintf fmt "[%a]" Bv.pp f
  | Skip -> Format.pp_print_string fmt "skip"

let pp fmt g =
  Format.fprintf fmt "@[<v>entry=%d exit=%d@," g.entry g.exit_;
  Array.iter
    (fun e -> Format.fprintf fmt "e%d: %d -> %d  %a@," e.id e.src e.dst pp_label e.label)
    g.edges;
  Format.fprintf fmt "@]"
