lib/prog/lang.ml: Format List Printf Smt String
