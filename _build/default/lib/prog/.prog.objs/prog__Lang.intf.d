lib/prog/lang.mli: Format Smt
