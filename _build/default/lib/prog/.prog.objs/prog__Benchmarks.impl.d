lib/prog/benchmarks.ml: Lang Printf Smt
