lib/prog/cfg.mli: Format Lang Smt
