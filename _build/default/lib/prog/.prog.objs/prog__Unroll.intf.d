lib/prog/unroll.mli: Lang
