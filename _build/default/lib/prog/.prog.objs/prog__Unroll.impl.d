lib/prog/unroll.ml: Lang List Smt
