lib/prog/interp.mli: Lang
