lib/prog/paths.mli: Cfg Format Seq
