lib/prog/testgen.mli: Cfg Lang Paths Smt
