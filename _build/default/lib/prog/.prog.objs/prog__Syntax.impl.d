lib/prog/syntax.ml: Array Format Lang List Printf Smt String
