lib/prog/cfg.ml: Array Format Lang List Smt
