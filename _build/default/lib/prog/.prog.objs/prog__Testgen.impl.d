lib/prog/testgen.ml: Lang List Smt Symexec
