lib/prog/syntax.mli: Format Lang
