lib/prog/interp.ml: Hashtbl Lang List Option Smt
