lib/prog/paths.ml: Array Cfg Format List Seq String
