lib/prog/symexec.mli: Cfg Lang Paths Smt
