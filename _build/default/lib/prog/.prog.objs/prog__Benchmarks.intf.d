lib/prog/benchmarks.mli: Lang
