lib/prog/symexec.ml: Array Cfg Lang List Map Smt String
