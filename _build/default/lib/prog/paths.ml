type path = int list

let enumerate (g : Cfg.t) =
  let rec from node acc () =
    if node = g.Cfg.exit_ then Seq.Cons (List.rev acc, Seq.empty)
    else
      let branches =
        List.map
          (fun (e : Cfg.edge) -> from e.Cfg.dst (e.Cfg.id :: acc))
          g.Cfg.succ.(node)
      in
      List.fold_right Seq.append branches Seq.empty ()
  in
  from g.Cfg.entry []

let count (g : Cfg.t) =
  (* number of paths from each node to exit, processed in reverse
     topological order via memoized recursion (the CFG is a DAG) *)
  let memo = Array.make g.Cfg.nnodes (-1) in
  let rec paths_from node =
    if node = g.Cfg.exit_ then 1
    else if memo.(node) >= 0 then memo.(node)
    else begin
      let n =
        List.fold_left
          (fun acc (e : Cfg.edge) -> acc + paths_from e.Cfg.dst)
          0 g.Cfg.succ.(node)
      in
      memo.(node) <- n;
      n
    end
  in
  paths_from g.Cfg.entry

let vector (g : Cfg.t) path =
  let v = Array.make (Cfg.num_edges g) 0 in
  List.iter (fun id -> v.(id) <- v.(id) + 1) path;
  v

let of_vector (g : Cfg.t) v =
  let rec go node acc =
    if node = g.Cfg.exit_ then Some (List.rev acc)
    else
      let next =
        List.find_opt (fun (e : Cfg.edge) -> v.(e.Cfg.id) = 1) g.Cfg.succ.(node)
      in
      match next with
      | None -> None
      | Some e -> go e.Cfg.dst (e.Cfg.id :: acc)
  in
  go g.Cfg.entry []

let pp fmt path =
  Format.fprintf fmt "[%s]" (String.concat ";" (List.map string_of_int path))
