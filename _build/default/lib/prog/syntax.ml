module Bv = Smt.Bv

exception Parse_error of { line : int; message : string }

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type token =
  | IDENT of string
  | INT of int
  | PUNCT of string
  | EOF

let keywords =
  [ "program"; "width"; "while"; "if"; "else"; "assume"; "skip"; "true"; "false" ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(* longest-match punctuation, tried in order *)
let puncts =
  [
    ":="; "->"; "<=s"; "<s"; "<<"; ">>>"; ">>"; "=="; "!="; "<="; ">="; "&&";
    "||"; "("; ")"; "{"; "}"; ","; ";"; "|"; "^"; "&"; "+"; "-"; "*"; "/";
    "%"; "~"; "!"; "<"; ">"; "?"; ":";
  ]

let tokenize text =
  let n = String.length text in
  let tokens = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let fail message = raise (Parse_error { line = !line; message }) in
  let starts_with p =
    let lp = String.length p in
    !i + lp <= n && String.sub text !i lp = p
  in
  while !i < n do
    let c = text.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if starts_with "//" then begin
      while !i < n && text.[!i] <> '\n' do
        incr i
      done
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit text.[!i] do
        incr i
      done;
      tokens := (INT (int_of_string (String.sub text start (!i - start))), !line) :: !tokens
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char text.[!i] do
        incr i
      done;
      tokens := (IDENT (String.sub text start (!i - start)), !line) :: !tokens
    end
    else begin
      match List.find_opt starts_with puncts with
      | Some p ->
        i := !i + String.length p;
        tokens := (PUNCT p, !line) :: !tokens
      | None -> fail (Printf.sprintf "unexpected character %C" c)
    end
  done;
  Array.of_list (List.rev ((EOF, !line) :: !tokens))

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

type state = {
  tokens : (token * int) array;
  mutable pos : int;
  mutable width : int;
}

exception Backtrack

let peek st = fst st.tokens.(st.pos)
let line_at st = snd st.tokens.(st.pos)
let advance st = st.pos <- st.pos + 1

let fail st message = raise (Parse_error { line = line_at st; message })

let expect_punct st p =
  match peek st with
  | PUNCT q when q = p -> advance st
  | _ -> fail st (Printf.sprintf "expected %S" p)

let expect_ident st =
  match peek st with
  | IDENT x when not (List.mem x keywords) ->
    advance st;
    x
  | _ -> fail st "expected an identifier"

let expect_keyword st kw =
  match peek st with
  | IDENT x when x = kw -> advance st
  | _ -> fail st (Printf.sprintf "expected %S" kw)

let expect_int st =
  match peek st with
  | INT v ->
    advance st;
    v
  | _ -> fail st "expected an integer"

let eat_punct st p =
  match peek st with
  | PUNCT q when q = p ->
    advance st;
    true
  | _ -> false

(* term precedence, loosest to tightest *)
let binops_by_level =
  [
    [ ("|", Bv.bor) ];
    [ ("^", Bv.bxor) ];
    [ ("&", Bv.band) ];
    [ ("<<", Bv.bshl); (">>>", Bv.bashr); (">>", Bv.blshr) ];
    [ ("+", Bv.badd); ("-", Bv.bsub) ];
    [ ("*", Bv.bmul); ("/", Bv.budiv); ("%", Bv.burem) ];
  ]

let rec parse_term st = parse_level st binops_by_level

and parse_level st = function
  | [] -> parse_unary st
  | ops :: tighter ->
    let lhs = ref (parse_level st tighter) in
    let continue = ref true in
    while !continue do
      match peek st with
      | PUNCT p when List.mem_assoc p ops ->
        advance st;
        let rhs = parse_level st tighter in
        lhs := (List.assoc p ops) !lhs rhs
      | _ -> continue := false
    done;
    !lhs

and parse_unary st =
  match peek st with
  | PUNCT "~" ->
    advance st;
    Bv.bnot (parse_unary st)
  | PUNCT "-" ->
    advance st;
    Bv.bneg (parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | INT v ->
    advance st;
    Bv.const ~width:st.width v
  | IDENT x when not (List.mem x keywords) ->
    advance st;
    Bv.var ~width:st.width x
  | PUNCT "(" -> (
    (* "(term)" or "(formula ? term : term)" — try the term first *)
    let saved = st.pos in
    advance st;
    match
      let t = parse_term st in
      expect_punct st ")";
      t
    with
    | t -> t
    | exception Parse_error _ ->
      st.pos <- saved;
      advance st;
      let c = parse_formula st in
      expect_punct st "?";
      let a = parse_term st in
      expect_punct st ":";
      let b = parse_term st in
      expect_punct st ")";
      Bv.ite c a b)
  | _ -> fail st "expected a term"

and parse_comparison st =
  let a = parse_term st in
  let op =
    match peek st with
    | PUNCT "==" -> Bv.eq
    | PUNCT "!=" -> Bv.neq
    | PUNCT "<=s" -> Bv.sle
    | PUNCT "<s" -> Bv.slt
    | PUNCT "<=" -> Bv.ule
    | PUNCT "<" -> Bv.ult
    | PUNCT ">=" -> Bv.uge
    | PUNCT ">" -> Bv.ugt
    | _ -> raise Backtrack
  in
  advance st;
  let b = parse_term st in
  op a b

and parse_atom st =
  match peek st with
  | PUNCT "!" ->
    advance st;
    Bv.fnot (parse_atom st)
  | IDENT "true" ->
    advance st;
    Bv.tru
  | IDENT "false" ->
    advance st;
    Bv.fls
  | _ -> (
    (* comparison, or a parenthesized formula *)
    let saved = st.pos in
    match parse_comparison st with
    | f -> f
    | exception (Backtrack | Parse_error _) -> (
      st.pos <- saved;
      match peek st with
      | PUNCT "(" ->
        advance st;
        let f = parse_formula st in
        expect_punct st ")";
        f
      | _ -> fail st "expected a condition"))

and parse_conj st =
  let lhs = ref (parse_atom st) in
  while eat_punct st "&&" do
    lhs := Bv.fand !lhs (parse_atom st)
  done;
  !lhs

and parse_formula st =
  let lhs = ref (parse_conj st) in
  while eat_punct st "||" do
    lhs := Bv.for_ !lhs (parse_conj st)
  done;
  !lhs

let rec parse_stmt st =
  match peek st with
  | IDENT "skip" ->
    advance st;
    expect_punct st ";";
    None
  | IDENT "assume" ->
    advance st;
    expect_punct st "(";
    let f = parse_formula st in
    expect_punct st ")";
    expect_punct st ";";
    Some (Lang.Assume f)
  | IDENT "while" ->
    advance st;
    expect_punct st "(";
    let c = parse_formula st in
    expect_punct st ")";
    Some (Lang.While (c, parse_block st))
  | IDENT "if" ->
    advance st;
    expect_punct st "(";
    let c = parse_formula st in
    expect_punct st ")";
    let then_ = parse_block st in
    let else_ =
      match peek st with
      | IDENT "else" ->
        advance st;
        parse_block st
      | _ -> []
    in
    Some (Lang.If (c, then_, else_))
  | IDENT x when not (List.mem x keywords) ->
    advance st;
    expect_punct st ":=";
    let e = parse_term st in
    expect_punct st ";";
    Some (Lang.Assign (x, e))
  | _ -> fail st "expected a statement"

and parse_block st =
  expect_punct st "{";
  let stmts = ref [] in
  while peek st <> PUNCT "}" do
    match parse_stmt st with
    | Some s -> stmts := s :: !stmts
    | None -> ()
  done;
  expect_punct st "}";
  List.rev !stmts

let parse_ident_list st =
  expect_punct st "(";
  let rec go acc =
    match peek st with
    | PUNCT ")" ->
      advance st;
      List.rev acc
    | _ ->
      let x = expect_ident st in
      if eat_punct st "," then go (x :: acc)
      else begin
        expect_punct st ")";
        List.rev (x :: acc)
      end
  in
  go []

let parse text =
  let st = { tokens = tokenize text; pos = 0; width = 8 } in
  expect_keyword st "program";
  let name = expect_ident st in
  let inputs = parse_ident_list st in
  expect_punct st "->";
  let outputs = parse_ident_list st in
  expect_keyword st "width";
  let width = expect_int st in
  if width < 1 || width > Bv.max_width then fail st "width out of range";
  st.width <- width;
  let body = parse_block st in
  (match peek st with
  | EOF -> ()
  | _ -> fail st "trailing input after the program");
  Lang.make ~name ~width ~inputs ~outputs body

let parse_file path =
  let ic = open_in path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  parse text

(* ------------------------------------------------------------------ *)
(* Printer (fully parenthesized, so it parses back unambiguously)      *)
(* ------------------------------------------------------------------ *)

let binop_symbol = function
  | Bv.Band -> "&"
  | Bv.Bor -> "|"
  | Bv.Bxor -> "^"
  | Bv.Badd -> "+"
  | Bv.Bsub -> "-"
  | Bv.Bmul -> "*"
  | Bv.Budiv -> "/"
  | Bv.Burem -> "%"
  | Bv.Bshl -> "<<"
  | Bv.Blshr -> ">>"
  | Bv.Bashr -> ">>>"

let rec print_term fmt (t : Bv.term) =
  match t with
  | Bv.Const { value; _ } -> Format.pp_print_int fmt value
  | Bv.Var { name; _ } -> Format.pp_print_string fmt name
  | Bv.Unop (Bv.Bnot, a) -> Format.fprintf fmt "~%a" print_term a
  | Bv.Unop (Bv.Bneg, a) -> Format.fprintf fmt "-%a" print_term a
  | Bv.Binop (op, a, b) ->
    Format.fprintf fmt "(%a %s %a)" print_term a (binop_symbol op) print_term b
  | Bv.Ite (c, a, b) ->
    Format.fprintf fmt "(%a ? %a : %a)" print_formula c print_term a print_term
      b

and print_formula fmt (f : Bv.formula) =
  match f with
  | Bv.Btrue -> Format.pp_print_string fmt "true"
  | Bv.Bfalse -> Format.pp_print_string fmt "false"
  | Bv.Pvar _ ->
    invalid_arg "Syntax.print: boolean variables have no concrete syntax"
  | Bv.Eq (a, b) -> Format.fprintf fmt "%a == %a" print_term a print_term b
  | Bv.Ult (a, b) -> Format.fprintf fmt "%a < %a" print_term a print_term b
  | Bv.Ule (a, b) -> Format.fprintf fmt "%a <= %a" print_term a print_term b
  | Bv.Slt (a, b) -> Format.fprintf fmt "%a <s %a" print_term a print_term b
  | Bv.Sle (a, b) -> Format.fprintf fmt "%a <=s %a" print_term a print_term b
  | Bv.Fnot g -> Format.fprintf fmt "!(%a)" print_formula g
  | Bv.Fand (a, b) ->
    Format.fprintf fmt "((%a) && (%a))" print_formula a print_formula b
  | Bv.For (a, b) ->
    Format.fprintf fmt "((%a) || (%a))" print_formula a print_formula b
  | Bv.Fxor (a, b) ->
    (* no concrete xor connective: encode as inequality of the sides *)
    Format.fprintf fmt "(((%a) && !(%a)) || (!(%a) && (%a)))" print_formula a
      print_formula b print_formula a print_formula b

let rec print_stmt fmt = function
  | Lang.Assign (x, e) -> Format.fprintf fmt "%s := %a;" x print_term e
  | Lang.Assume f -> Format.fprintf fmt "assume (%a);" print_formula f
  | Lang.If (c, t, e) ->
    Format.fprintf fmt "@[<v 2>if (%a) {@,%a@]@,}" print_formula c print_block t;
    if e <> [] then
      Format.fprintf fmt "@[<v 2> else {@,%a@]@,}" print_block e
  | Lang.While (c, body) ->
    Format.fprintf fmt "@[<v 2>while (%a) {@,%a@]@,}" print_formula c
      print_block body

and print_block fmt stmts =
  if stmts = [] then Format.pp_print_string fmt "skip;"
  else Format.pp_print_list ~pp_sep:Format.pp_print_cut print_stmt fmt stmts

let print fmt (p : Lang.t) =
  Format.fprintf fmt "@[<v>@[<v 2>program %s (%s) -> (%s) width %d {@,%a@]@,}@]"
    p.Lang.name
    (String.concat ", " p.Lang.inputs)
    (String.concat ", " p.Lang.outputs)
    p.Lang.width print_block p.Lang.body

let to_string p = Format.asprintf "%a" print p
