(** Decision-tree learning over boolean features (ID3).

    Section 2.4 notes that CEGAR's inductive engine need not be the
    version-space walk of the abstraction lattice: "alternative learning
    algorithms (such as induction on decision trees) can also be used,
    as demonstrated by Gupta". This module provides that learner; the
    CEGAR implementation uses it to pick refinement variables by how
    well they separate reachable states from bad states. *)

type t =
  | Leaf of bool
  | Node of {
      feature : int;
      if_true : t;
      if_false : t;
    }

val learn :
  nfeatures:int -> ?max_depth:int -> (bool array * bool) list -> t
(** ID3 with information gain; splits until examples are pure, features
    are exhausted, or [max_depth] (default 16) is reached. Impure leaves
    take the majority label. The example list must be non-empty. *)

val classify : t -> bool array -> bool
val depth : t -> int
val size : t -> int

val features_used : t -> int list
(** Features in breadth-first order (roughly most-informative first),
    deduplicated. *)

val training_accuracy : t -> (bool array * bool) list -> float
val pp : Format.formatter -> t -> unit
