type lightweightness =
  | Strict_special_case of string
  | Lower_complexity of string
  | Decidable_subproblem of string
  | Practical of string

type ('artifact, 'instance) structure_hypothesis = {
  h_name : string;
  h_description : string;
  member : 'artifact -> bool;
  strict : bool;
  primitive : ('artifact -> 'instance -> bool) option;
}

type ('example, 'artifact) inductive_engine = {
  i_name : string;
  i_description : string;
  infer : 'example list -> 'artifact option;
}

type ('query, 'answer) deductive_engine = {
  d_name : string;
  d_description : string;
  lightweight : lightweightness;
  solve : 'query -> 'answer;
}

type guarantee =
  | Sound_if_hypothesis_valid
  | Probabilistically_sound_if_hypothesis_valid of string
  | Best_effort

type ('example, 'artifact, 'query, 'answer) instance = {
  name : string;
  problem : string;
  hypothesis : ('artifact, 'example) structure_hypothesis;
  inductive : ('example, 'artifact) inductive_engine;
  deductive : ('query, 'answer) deductive_engine;
  soundness : guarantee;
}

let pp_lightweightness fmt = function
  | Strict_special_case s -> Format.fprintf fmt "strict special case: %s" s
  | Lower_complexity s -> Format.fprintf fmt "lower complexity: %s" s
  | Decidable_subproblem s -> Format.fprintf fmt "decidable subproblem: %s" s
  | Practical s -> Format.fprintf fmt "lightweight in practice: %s" s

let pp_guarantee fmt = function
  | Sound_if_hypothesis_valid ->
    Format.pp_print_string fmt "sound if valid(H)"
  | Probabilistically_sound_if_hypothesis_valid p ->
    Format.fprintf fmt "probabilistically sound if valid(H): %s" p
  | Best_effort -> Format.pp_print_string fmt "best effort"

let describe fmt i =
  Format.fprintf fmt
    "@[<v 2>%s — %s@,H: %s (%s%s)@,I: %s (%s)@,D: %s (%s; %a)@,soundness: %a@]"
    i.name i.problem i.hypothesis.h_name i.hypothesis.h_description
    (if i.hypothesis.strict then "; C_H strictly inside C_S" else "")
    i.inductive.i_name i.inductive.i_description i.deductive.d_name
    i.deductive.d_description pp_lightweightness i.deductive.lightweight
    pp_guarantee i.soundness
