(** The demonstrated applications as sciduction instances — the content
    of Table 1 of the paper, plus the Section 2.4 instances implemented
    in this repository. *)

type row = {
  application : string;
  h : string;
  i : string;
  d : string;
}

val table1 : row list
(** The paper's Table 1: timing analysis, program synthesis, switching
    logic synthesis. *)

val section24 : row list
(** The closely-related instances of Section 2.4 that this repository
    also implements: CEGAR, L*-based assume-guarantee reasoning,
    simulation-guided invariant generation. *)

val pp_table : Format.formatter -> row list -> unit
