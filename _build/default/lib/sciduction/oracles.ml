type ('q, 'a) oracle = 'q -> 'a

type ('q, 'a) counted = {
  oracle : ('q, 'a) oracle;
  count : unit -> int;
  reset : unit -> unit;
}

let counting f =
  let n = ref 0 in
  {
    oracle =
      (fun q ->
        incr n;
        f q);
    count = (fun () -> !n);
    reset = (fun () -> n := 0);
  }

let memoizing f =
  let tbl = Hashtbl.create 64 in
  fun q ->
    match Hashtbl.find_opt tbl q with
    | Some a -> a
    | None ->
      let a = f q in
      Hashtbl.add tbl q a;
      a

let tracing cb f q =
  let a = f q in
  cb f q a;
  a

let log_to log f q =
  let a = f q in
  log := (q, a) :: !log;
  a

type ('input, 'output) io_oracle = ('input, 'output) oracle
type 'point label_oracle = ('point, bool) oracle
type 'word membership_oracle = ('word, bool) oracle
type ('hypothesis, 'cex) equivalence_oracle = ('hypothesis, 'cex option) oracle
