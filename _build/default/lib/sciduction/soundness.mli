(** Validity of structure hypotheses and conditional soundness
    (Section 2.3).

    valid(H) is the formula
    (exists c in C_S. c |= Psi) => (exists c in C_H. c |= Psi): if any
    artifact satisfying the specification exists, one exists inside the
    hypothesis class. A sciductive procedure must satisfy
    valid(H) => sound(P).

    Validity is rarely checkable outright; this module records how it
    was discharged — proved for the system class, assumed, or tested
    a posteriori (Section 6's "structure hypothesis testing", e.g. the
    SMT equivalence check of {!Ogis.Synth.verify_against}). *)

type validity =
  | Proved of string  (** argument, e.g. monotone dynamics + finite grid *)
  | Assumed of string
  | Tested of { method_ : string; passed : bool }
  | Refuted of string

type 'cex test = unit -> (unit, 'cex) result
(** An a-posteriori hypothesis test (equivalence check, exhaustive
    simulation, ...). *)

type report = {
  hypothesis : string;
  validity : validity;
  conclusion : string;
      (** what soundness follows, per valid(H) => sound(P) *)
}

val conclude : hypothesis:string -> validity -> report
(** Instantiate valid(H) => sound(P): [Proved]/[Tested passed] yield a
    soundness conclusion, [Assumed] a conditional one, [Refuted]/[Tested
    failed] a warning that the output may be wrong (Fig. 7's right
    branch). *)

val run_test : hypothesis:string -> method_:string -> 'cex test -> report
val pp : Format.formatter -> report -> unit
