lib/sciduction/framework.ml: Format
