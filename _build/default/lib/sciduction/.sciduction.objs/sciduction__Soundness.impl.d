lib/sciduction/soundness.ml: Format
