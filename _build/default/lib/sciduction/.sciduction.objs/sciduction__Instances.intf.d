lib/sciduction/instances.mli: Format
