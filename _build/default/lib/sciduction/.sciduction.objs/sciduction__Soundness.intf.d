lib/sciduction/soundness.mli: Format
