lib/sciduction/dtree.mli: Format
