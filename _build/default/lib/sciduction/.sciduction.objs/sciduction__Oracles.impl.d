lib/sciduction/oracles.ml: Hashtbl
