lib/sciduction/instances.ml: Format List String
