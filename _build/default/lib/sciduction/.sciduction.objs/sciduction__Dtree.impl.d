lib/sciduction/dtree.ml: Array Format Fun Hashtbl List Queue
