lib/sciduction/framework.mli: Format
