lib/sciduction/oracles.mli:
