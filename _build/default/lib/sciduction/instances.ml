type row = {
  application : string;
  h : string;
  i : string;
  d : string;
}

let table1 =
  [
    {
      application = "Timing analysis (Sec 3)";
      h = "(w, pi) model & constraints";
      i = "game-theoretic online learning";
      d = "SMT solving for basis path generation";
    };
    {
      application = "Program synthesis (Sec 4)";
      h = "loop-free programs from component library";
      i = "learning from distinguishing inputs";
      d = "SMT solving for input/program generation";
    };
    {
      application = "Switching logic synthesis (Sec 5)";
      h = "guards as hyperboxes";
      i = "hyperbox learning from labeled points";
      d = "numerical simulation as reachability oracle";
    };
  ]

let section24 =
  [
    {
      application = "CEGAR (Sec 2.4)";
      h = "abstract domain (localization abstraction)";
      i = "abstraction refinement from spurious counterexamples";
      d = "model checker on the abstraction + SAT spuriousness check";
    };
    {
      application = "Assume-guarantee reasoning (Sec 2.4)";
      h = "assumptions as DFAs over the interface alphabet";
      i = "Angluin's L* from queries and counterexamples";
      d = "model checking for membership/equivalence queries";
    };
    {
      application = "Invariant generation (Sec 2.4)";
      h = "constants / equivalences / implications over netlist nodes";
      i = "keep candidates consistent with random simulation";
      d = "SAT-based temporal induction";
    };
  ]

let pp_table fmt rows =
  let widths =
    List.fold_left
      (fun (a, b, c, d) r ->
        ( max a (String.length r.application),
          max b (String.length r.h),
          max c (String.length r.i),
          max d (String.length r.d) ))
      (11, 1, 1, 1) rows
  in
  let wa, wh, wi, wd = widths in
  let line a h i d =
    Format.fprintf fmt "| %-*s | %-*s | %-*s | %-*s |@," wa a wh h wi i wd d
  in
  Format.fprintf fmt "@[<v>";
  line "Application" "H" "I" "D";
  line (String.make wa '-') (String.make wh '-') (String.make wi '-')
    (String.make wd '-');
  List.iter (fun r -> line r.application r.h r.i r.d) rows;
  Format.fprintf fmt "@]"
