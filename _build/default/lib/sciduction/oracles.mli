(** Oracle interfaces and combinators (Section 2.2.2).

    Inductive engines in sciduction learn from examples produced by
    oracles, which are in turn implemented by deductive procedures, by
    executing a model, or by a human. These combinators add the
    bookkeeping every application needs: query counting, memoization and
    tracing. *)

type ('q, 'a) oracle = 'q -> 'a

type ('q, 'a) counted = {
  oracle : ('q, 'a) oracle;
  count : unit -> int;
  reset : unit -> unit;
}

val counting : ('q, 'a) oracle -> ('q, 'a) counted
val memoizing : ('q, 'a) oracle -> ('q, 'a) oracle
(** Cache answers by structural equality of the query. *)

val tracing :
  (('q, 'a) oracle -> 'q -> 'a -> unit) -> ('q, 'a) oracle -> ('q, 'a) oracle
(** Invoke a callback on every query/answer pair. *)

val log_to : ('q * 'a) list ref -> ('q, 'a) oracle -> ('q, 'a) oracle

(** Common oracle shapes, named as in the paper. *)

type ('input, 'output) io_oracle = ('input, 'output) oracle
(** Section 4: maps a program input to the desired output. *)

type 'point label_oracle = ('point, bool) oracle
(** Section 5: labels a point positive (safe) or negative. *)

type 'word membership_oracle = ('word, bool) oracle
(** L*-style: is the word in the target language? *)

type ('hypothesis, 'cex) equivalence_oracle =
  ('hypothesis, ('cex option)) oracle
(** L*-style: [None] means equivalent, [Some cex] is a counterexample. *)
