type validity =
  | Proved of string
  | Assumed of string
  | Tested of { method_ : string; passed : bool }
  | Refuted of string

type 'cex test = unit -> (unit, 'cex) result

type report = {
  hypothesis : string;
  validity : validity;
  conclusion : string;
}

let conclude ~hypothesis validity =
  let conclusion =
    match validity with
    | Proved _ -> "valid(H) holds, so the procedure is sound"
    | Tested { passed = true; _ } ->
      "hypothesis test passed: output verified against the specification"
    | Assumed _ ->
      "soundness is conditional on the assumed structure hypothesis"
    | Refuted _ | Tested { passed = false; _ } ->
      "structure hypothesis is invalid: the output may be incorrect"
  in
  { hypothesis; validity; conclusion }

let run_test ~hypothesis ~method_ test =
  let passed = match test () with Ok () -> true | Error _ -> false in
  conclude ~hypothesis (Tested { method_; passed })

let pp_validity fmt = function
  | Proved why -> Format.fprintf fmt "proved (%s)" why
  | Assumed why -> Format.fprintf fmt "assumed (%s)" why
  | Tested { method_; passed } ->
    Format.fprintf fmt "tested by %s: %s" method_
      (if passed then "passed" else "FAILED")
  | Refuted why -> Format.fprintf fmt "refuted (%s)" why

let pp fmt r =
  Format.fprintf fmt "@[<v 2>hypothesis: %s@,validity: %a@,=> %s@]"
    r.hypothesis pp_validity r.validity r.conclusion
