type t =
  | Leaf of bool
  | Node of {
      feature : int;
      if_true : t;
      if_false : t;
    }

let entropy pos total =
  if pos = 0 || pos = total then 0.0
  else begin
    let p = float_of_int pos /. float_of_int total in
    let q = 1.0 -. p in
    -.((p *. log p) +. (q *. log q)) /. log 2.0
  end

let count_pos examples =
  List.fold_left (fun acc (_, label) -> if label then acc + 1 else acc) 0 examples

let majority examples = 2 * count_pos examples >= List.length examples

let information_gain examples feature =
  let t, f = List.partition (fun (x, _) -> x.(feature)) examples in
  let n = List.length examples in
  let h = entropy (count_pos examples) n in
  let weigh part =
    let np = List.length part in
    if np = 0 then 0.0
    else float_of_int np /. float_of_int n *. entropy (count_pos part) np
  in
  h -. weigh t -. weigh f

let learn ~nfeatures ?(max_depth = 16) examples =
  if examples = [] then invalid_arg "Dtree.learn: no examples";
  let rec go examples depth available =
    let pos = count_pos examples in
    let n = List.length examples in
    if pos = 0 then Leaf false
    else if pos = n then Leaf true
    else if depth >= max_depth then Leaf (majority examples)
    else begin
      (* prefer the highest information gain, but — unlike textbook ID3 —
         still split on a zero-gain feature when the examples are impure
         (XOR-shaped concepts have zero marginal gain at the root), as
         long as the split actually separates the examples *)
      let splits_properly f =
        let t, fa = List.partition (fun (x, _) -> x.(f)) examples in
        t <> [] && fa <> []
      in
      let best =
        List.fold_left
          (fun acc f ->
            if not (splits_properly f) then acc
            else
              let g = information_gain examples f in
              match acc with
              | Some (_, bg) when bg >= g -> acc
              | _ -> Some (f, g))
          None available
      in
      match best with
      | None -> Leaf (majority examples)
      | Some (feature, _) ->
        let t, f = List.partition (fun (x, _) -> x.(feature)) examples in
        let rest = List.filter (( <> ) feature) available in
        Node
          {
            feature;
            if_true = go t (depth + 1) rest;
            if_false = go f (depth + 1) rest;
          }
    end
  in
  go examples 0 (List.init nfeatures Fun.id)

let rec classify t x =
  match t with
  | Leaf b -> b
  | Node { feature; if_true; if_false } ->
    classify (if x.(feature) then if_true else if_false) x

let rec depth = function
  | Leaf _ -> 0
  | Node { if_true; if_false; _ } -> 1 + max (depth if_true) (depth if_false)

let rec size = function
  | Leaf _ -> 1
  | Node { if_true; if_false; _ } -> 1 + size if_true + size if_false

let features_used t =
  (* breadth-first so shallower (more informative) features come first *)
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let queue = Queue.create () in
  Queue.add t queue;
  while not (Queue.is_empty queue) do
    match Queue.pop queue with
    | Leaf _ -> ()
    | Node { feature; if_true; if_false } ->
      if not (Hashtbl.mem seen feature) then begin
        Hashtbl.replace seen feature ();
        acc := feature :: !acc
      end;
      Queue.add if_true queue;
      Queue.add if_false queue
  done;
  List.rev !acc

let training_accuracy t examples =
  let correct =
    List.fold_left
      (fun acc (x, label) -> if classify t x = label then acc + 1 else acc)
      0 examples
  in
  float_of_int correct /. float_of_int (List.length examples)

let rec pp fmt = function
  | Leaf b -> Format.fprintf fmt "%b" b
  | Node { feature; if_true; if_false } ->
    Format.fprintf fmt "@[<v 2>f%d?@,+ %a@,- %a@]" feature pp if_true pp
      if_false
