(** The sciduction formalization of Section 2.

    An instance of sciduction is a triple <H, I, D>:

    - a {e structure hypothesis} [H] — the class of artifacts the
      procedure may produce (a subclass C_H of the full artifact class
      C_S, ideally a strict one, supplying inductive bias);
    - an {e inductive inference engine} [I] — an algorithm learning an
      artifact of C_H from examples;
    - a {e lightweight deductive engine} [D] — a decision procedure for
      a problem easier than the overall verification/synthesis problem,
      used to generate or label examples and to synthesize candidates.

    The types here make the triple a first-class value, so the three
    applications of the paper (and the Section 2.4 instances such as
    CEGAR) can be described, composed and reported uniformly — see
    {!Instances} for Table 1. *)

(** How the "lightweight" requirement of Section 2.2.3 is met. *)
type lightweightness =
  | Strict_special_case of string
      (** D solves a strict special case of the original problem *)
  | Lower_complexity of string
      (** decidable original: D is asymptotically cheaper *)
  | Decidable_subproblem of string
      (** undecidable original: D solves a decidable problem *)
  | Practical of string
      (** the fuzzier practical notion; argument recorded as prose *)

type ('artifact, 'instance) structure_hypothesis = {
  h_name : string;
  h_description : string;
  member : 'artifact -> bool;  (** artifact ∈ C_H *)
  strict : bool;  (** C_H ⊊ C_S (recommended; see Section 2.2.4) *)
  primitive : ('artifact -> 'instance -> bool) option;
      (** optional semantics: is the primitive element consistent with
          the artifact (e.g. a point inside a hyperbox)? *)
}

type ('example, 'artifact) inductive_engine = {
  i_name : string;
  i_description : string;
  infer : 'example list -> 'artifact option;
}

type ('query, 'answer) deductive_engine = {
  d_name : string;
  d_description : string;
  lightweight : lightweightness;
  solve : 'query -> 'answer;
}

(** Soundness in the sense of Section 2.3: conditional on the validity
    of the structure hypothesis, possibly only probabilistic. *)
type guarantee =
  | Sound_if_hypothesis_valid
  | Probabilistically_sound_if_hypothesis_valid of string
      (** the probability bound, e.g. "1 - delta after poly(ln 1/delta)
          tests" *)
  | Best_effort

type ('example, 'artifact, 'query, 'answer) instance = {
  name : string;
  problem : string;  (** the verification/synthesis problem attacked *)
  hypothesis : ('artifact, 'example) structure_hypothesis;
  inductive : ('example, 'artifact) inductive_engine;
  deductive : ('query, 'answer) deductive_engine;
  soundness : guarantee;
}

val pp_lightweightness : Format.formatter -> lightweightness -> unit
val pp_guarantee : Format.formatter -> guarantee -> unit

val describe :
  Format.formatter -> (_, _, _, _) instance -> unit
(** One Table-1-style row: name, H, I, D. *)
