module Th = Hybrid.Thermostat

let problem ?(dwell = 0.0) ?(grid = 0.01) () =
  {
    Fixpoint.sys = Th.system;
    config =
      {
        Label.dt = 0.01;
        max_time = 600.0;
        dwell = (fun _ -> dwell);
        guard_dims = [| 0 |];
        entry_state = (fun _mode point -> [| point.(0) |]);
      };
    grid;
    coarse = 0.5;
    init = (fun _ -> Box.make ~lo:[| 0.0 |] ~hi:[| 40.0 |]);
    frozen = [];
    seed_hint = (fun _ -> [| 20.0 |]);
    max_iterations = 10;
  }

let synthesize ?dwell ?grid () = Fixpoint.synthesize (problem ?dwell ?grid ())

let expected ~dwell =
  [
    ("gOn", (Th.t_lo, Th.expected_on_guard_hi ~dwell));
    ("gOff", (Th.expected_off_guard_lo ~dwell, Th.t_hi));
  ]
