(** Learning hyperboxes from labeled points (the inductive engine of
    Section 5.2, after Goldman–Kearns).

    Points are labeled positive (safe switching state) or negative by an
    oracle; the learner finds the maximal grid-aligned box around a
    positive seed via per-dimension binary search. Correct when the
    positive set restricted to each search line is an interval — which
    the structure hypothesis (safe switching states form a box)
    guarantees. *)

val learn :
  grid:float ->
  label:(float array -> bool) ->
  within:Box.t ->
  seed:float array ->
  Box.t option
(** Maximal box around [seed], clipped to [within], vertices on the
    grid. [None] when [seed] itself labels negative. *)

val find_seed :
  grid:float ->
  coarse:float ->
  label:(float array -> bool) ->
  within:Box.t ->
  prefer:float array ->
  float array option
(** A positive point inside [within]: tries [prefer] first, then scans a
    coarse grid (1-D and 2-D boxes only), choosing the positive point
    closest to [prefer]. *)

val labels_used : unit -> int
(** Number of label-oracle queries made so far (for the ablation bench). *)

val reset_labels_used : unit -> unit
