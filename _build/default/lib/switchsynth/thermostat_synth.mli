(** Switching-logic synthesis for the thermostat (second case study). *)

val problem : ?dwell:float -> ?grid:float -> unit -> Fixpoint.problem
(** Guards over the temperature; initial over-approximations span the
    whole operating range [0, 40]. *)

val synthesize : ?dwell:float -> ?grid:float -> unit -> Fixpoint.result

val expected : dwell:float -> (string * (float * float)) list
(** The closed-form guards (see {!Hybrid.Thermostat}): gOn (entering On)
    is [t_lo, t_heat - (t_heat - t_hi) e^(a tau)], gOff symmetric. *)
