(** The labeling oracle: is a switching state safe?

    Answers the deductive query of Section 5.2 by simulation: entering
    mode [m] at a given state, the trajectory must visit only safe states
    until some exit guard (a transition to a {e different} mode) becomes
    true. Self-loop transitions are not exits — re-entering the same mode
    does not change the dynamics, and counting them would validate
    states that merely sit inside their own entry guard while drifting
    toward unsafety.

    With a positive dwell requirement, exit guards are only consulted
    after [dwell] time units in the mode, yielding the Eq. 4 variant. *)

type config = {
  dt : float;
  max_time : float;  (** simulation horizon; timeout labels "unsafe" *)
  dwell : int -> float;  (** minimum dwell per mode *)
  guard_dims : int array;
      (** state dimensions that guards constrain (e.g. just omega) *)
  entry_state : int -> float array -> float array;
      (** rebuild a full entry state from a guard point, per mode *)
}

val project : config -> float array -> float array
(** Restrict a state to the guard dimensions. *)

val safe_entry :
  config ->
  Hybrid.Mds.t ->
  guards:(string -> Box.t) ->
  mode:int ->
  float array ->
  bool
(** [safe_entry cfg sys ~guards ~mode p]: is the guard point [p] a safe
    state at which to switch into [mode], given the current guard
    boxes? *)
