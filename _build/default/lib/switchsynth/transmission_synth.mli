(** Ready-made switching-logic synthesis problems for the automatic
    transmission (the Section 5.4 experiments). *)

val problem : ?dwell:float -> ?grid:float -> unit -> Fixpoint.problem
(** [dwell] defaults to 0 (the Eq. 3 safety-only setting); 5.0 gives the
    Eq. 4 dwell-time variant. [grid] defaults to the paper's 0.01. *)

val synthesize : ?dwell:float -> ?grid:float -> unit -> Fixpoint.result

val paper_eq3 : (string * (float * float)) list
(** The guard intervals reported in Eq. 3 of the paper, over omega. *)

val paper_eq4 : (string * (float * float)) list
(** The guard intervals reported in Eq. 4 (dwell-time variant). *)
