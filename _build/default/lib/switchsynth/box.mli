(** Hyperboxes on a discrete grid — the structure hypothesis of Section 5.

    A box is a conjunction of interval constraints, one per dimension.
    The paper's structure hypothesis requires box vertices to lie on a
    known discrete grid (finite-precision recording of continuous
    values); {!snap} rounds to that grid. *)

type t = {
  lo : float array;
  hi : float array;
}

val make : lo:float array -> hi:float array -> t
val dim : t -> int
val empty : int -> t
(** A canonical empty box ([lo > hi] in every dimension). *)

val is_empty : t -> bool
val mem : t -> float array -> bool

val segment_meets : t -> float array -> float array -> bool
(** [segment_meets b p q]: does the axis-aligned bounding segment from
    [p] to [q] intersect [b] in every dimension? Used for exit-guard
    crossing detection between consecutive simulation samples. *)

val snap : grid:float -> t -> t
(** Round both corners to grid multiples (lo up is not performed — plain
    nearest rounding, matching finite-precision recording). *)

val equal : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
val pp1 : Format.formatter -> t -> unit
(** Print a 1-D box as an interval [lo <= x <= hi]. *)
