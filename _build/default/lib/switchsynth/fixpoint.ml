module Mds = Hybrid.Mds

type problem = {
  sys : Mds.t;
  config : Label.config;
  grid : float;
  coarse : float;
  init : string -> Box.t;
  frozen : string list;
  seed_hint : string -> float array;
  max_iterations : int;
}

type result = {
  guards : (string * Box.t) list;
  iterations : int;
  converged : bool;
  labels_queried : int;
}

let synthesize p =
  Boxlearn.reset_labels_used ();
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun (tr : Mds.transition) ->
      Hashtbl.replace tbl tr.Mds.label (p.init tr.Mds.label))
    p.sys.Mds.transitions;
  let lookup label = Hashtbl.find tbl label in
  let refine (tr : Mds.transition) =
    let label_oracle point =
      Label.safe_entry p.config p.sys ~guards:lookup ~mode:tr.Mds.dst point
    in
    let within = lookup tr.Mds.label in
    let learned =
      match
        Boxlearn.find_seed ~grid:p.grid ~coarse:p.coarse ~label:label_oracle
          ~within ~prefer:(p.seed_hint tr.Mds.label)
      with
      | None -> Box.empty (Box.dim within)
      | Some seed -> (
        match
          Boxlearn.learn ~grid:p.grid ~label:label_oracle ~within ~seed
        with
        | None -> Box.empty (Box.dim within)
        | Some b -> b)
    in
    if Box.equal learned within then false
    else begin
      Hashtbl.replace tbl tr.Mds.label learned;
      true
    end
  in
  let rec iterate n =
    if n >= p.max_iterations then (n, false)
    else begin
      let changed = ref false in
      Array.iter
        (fun (tr : Mds.transition) ->
          if not (List.mem tr.Mds.label p.frozen) then
            if refine tr then changed := true)
        p.sys.Mds.transitions;
      if !changed then iterate (n + 1) else (n + 1, true)
    end
  in
  let iterations, converged = iterate 0 in
  {
    guards =
      Array.to_list p.sys.Mds.transitions
      |> List.map (fun (tr : Mds.transition) -> (tr.Mds.label, lookup tr.Mds.label));
    iterations;
    converged;
    labels_queried = Boxlearn.labels_used ();
  }

let guard_fn r label =
  match List.assoc_opt label r.guards with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Fixpoint.guard_fn: unknown guard %s" label)

let mem r label point = Box.mem (guard_fn r label) point
