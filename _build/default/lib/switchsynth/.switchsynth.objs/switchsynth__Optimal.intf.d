lib/switchsynth/optimal.mli: Fixpoint
