lib/switchsynth/label.mli: Box Hybrid
