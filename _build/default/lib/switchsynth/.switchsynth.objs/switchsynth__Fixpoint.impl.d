lib/switchsynth/fixpoint.ml: Array Box Boxlearn Hashtbl Hybrid Label List Printf
