lib/switchsynth/optimal.ml: Array Box Fixpoint Hybrid List String
