lib/switchsynth/transmission_synth.ml: Array Box Fixpoint Hybrid Label
