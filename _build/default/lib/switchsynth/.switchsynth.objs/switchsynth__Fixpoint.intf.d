lib/switchsynth/fixpoint.mli: Box Hybrid Label
