lib/switchsynth/label.ml: Array Box Hybrid List
