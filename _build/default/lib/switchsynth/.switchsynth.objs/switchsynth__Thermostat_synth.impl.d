lib/switchsynth/thermostat_synth.ml: Array Box Fixpoint Hybrid Label
