lib/switchsynth/boxlearn.mli: Box
