lib/switchsynth/thermostat_synth.mli: Fixpoint
