lib/switchsynth/box.mli: Format
