lib/switchsynth/box.ml: Array Float Format
