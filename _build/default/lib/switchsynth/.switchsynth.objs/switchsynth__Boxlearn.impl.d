lib/switchsynth/boxlearn.ml: Array Box Float List
