lib/switchsynth/transmission_synth.mli: Fixpoint
