type t = {
  lo : float array;
  hi : float array;
}

let make ~lo ~hi =
  if Array.length lo <> Array.length hi then
    invalid_arg "Box.make: dimension mismatch";
  { lo; hi }

let dim b = Array.length b.lo
let empty d = { lo = Array.make (max d 1) 1.0; hi = Array.make (max d 1) 0.0 }

let is_empty b =
  let rec go i = i < dim b && (b.lo.(i) > b.hi.(i) || go (i + 1)) in
  go 0

let mem b p =
  let rec go i =
    i >= dim b || (b.lo.(i) <= p.(i) && p.(i) <= b.hi.(i) && go (i + 1))
  in
  (not (is_empty b)) && go 0

let segment_meets b p q =
  let rec go i =
    i >= dim b
    || (max b.lo.(i) (min p.(i) q.(i)) <= min b.hi.(i) (max p.(i) q.(i))
       && go (i + 1))
  in
  (not (is_empty b)) && go 0

let snap ~grid b =
  let r v = Float.round (v /. grid) *. grid in
  { lo = Array.map r b.lo; hi = Array.map r b.hi }

let equal ?(eps = 1e-9) a b =
  dim a = dim b
  && (is_empty a = is_empty b)
  && (is_empty a
     ||
     let rec go i =
       i >= dim a
       || (abs_float (a.lo.(i) -. b.lo.(i)) <= eps
          && abs_float (a.hi.(i) -. b.hi.(i)) <= eps
          && go (i + 1))
     in
     go 0)

let pp fmt b =
  if is_empty b then Format.pp_print_string fmt "(empty)"
  else begin
    Format.fprintf fmt "[";
    for i = 0 to dim b - 1 do
      if i > 0 then Format.fprintf fmt " x ";
      Format.fprintf fmt "%.2f..%.2f" b.lo.(i) b.hi.(i)
    done;
    Format.fprintf fmt "]"
  end

let pp1 fmt b =
  if is_empty b then Format.pp_print_string fmt "(empty)"
  else if abs_float (b.lo.(0) -. b.hi.(0)) < 1e-9 then
    Format.fprintf fmt "w = %.2f" b.lo.(0)
  else Format.fprintf fmt "%.2f <= w <= %.2f" b.lo.(0) b.hi.(0)
