(** Switching logic synthesis for optimality (Section 6; Jha–Seshia–
    Tiwari, EMSOFT 2011).

    Safety synthesis (Eq. 3/Eq. 4) returns {e permission} boxes: the
    controller may switch anywhere inside a guard. This module picks the
    best point: a policy assigns each planned transition a switching
    threshold inside its safe guard, and cyclic coordinate descent with
    golden-section line search minimizes a simulated cost over the
    thresholds. Safety is inherited by construction — thresholds never
    leave the synthesized guards. *)

type objective =
  | Minimize_time
      (** wall-clock time to complete the plan *)
  | Maximize_mean_efficiency
      (** cost = 1 - (time-weighted mean transmission efficiency in the
          gear modes); for the transmission this is minimized near the
          analytic gear-crossover speeds eta_i = eta_{i+1} *)

type policy = (string * float) list
(** A switching threshold per planned transition, over omega. *)

type result = {
  policy : policy;
  cost : float;
  baseline_cost : float;  (** the switch-at-first-opportunity policy *)
  evaluations : int;  (** simulator runs spent optimizing *)
}

val cost_of_policy :
  Fixpoint.result ->
  plan:string list ->
  dwell:float ->
  objective ->
  policy ->
  float
(** Simulate the closed loop under the thresholds; infinite if the run
    is unsafe or does not complete. *)

val optimize :
  ?rounds:int ->
  ?tolerance:float ->
  Fixpoint.result ->
  plan:string list ->
  dwell:float ->
  objective ->
  result
(** [rounds] of coordinate descent (default 3); golden-section line
    search per coordinate down to [tolerance] (default 0.05) in omega. *)
