module T = Hybrid.Transmission
module Mds = Hybrid.Mds
module Simulate = Hybrid.Simulate

type objective =
  | Minimize_time
  | Maximize_mean_efficiency

type policy = (string * float) list

type result = {
  policy : policy;
  cost : float;
  baseline_cost : float;
  evaluations : int;
}

let gear_of_mode_name = function
  | "G1U" | "G1D" -> 1
  | "G2U" | "G2D" -> 2
  | "G3U" | "G3D" -> 3
  | _ -> 0

(* guard: fire once omega has reached the threshold IN THE SOURCE MODE'S
   FLOW DIRECTION — at or above theta while accelerating, at or below
   while decelerating. A symmetric window would fire one integration step
   early, i.e. just outside the safe band. The terminal g1ND fires when
   the speed has decayed to rest. *)
let direction_of label =
  let tr = T.system.Mds.transitions.(Mds.transition_index T.system label) in
  let src = T.system.Mds.modes.(tr.Mds.src).Mds.name in
  if String.length src = 3 && src.[2] = 'D' then `Down else `Up

let guard_of_policy policy label y =
  if label = "g1ND" then y.(1) <= 0.02
  else
    match List.assoc_opt label policy with
    | None -> false
    | Some theta -> (
      match direction_of label with
      | `Up -> y.(1) >= theta -. 1e-9
      | `Down -> y.(1) <= theta +. 1e-9)

let simulate policy ~plan ~dwell =
  Simulate.run_policy T.system
    ~guard:(guard_of_policy policy)
    ~plan ~min_dwell:dwell ~sample_every:0.05 ~dt:0.01 ~max_time:400.0
    [| 0.0; 0.0 |]

let cost_of_policy _guards ~plan ~dwell objective policy =
  let run = simulate policy ~plan ~dwell in
  match run.Simulate.outcome with
  | `Unsafe | `Timeout -> infinity
  | `Completed -> (
    match objective with
    | Minimize_time -> (
      match List.rev run.Simulate.switches with
      | [] -> infinity
      | last :: _ -> last.Simulate.switch_time)
    | Maximize_mean_efficiency ->
      (* time-weighted mean efficiency over the gear modes *)
      let total = ref 0.0 and acc = ref 0.0 in
      List.iter
        (fun (s : Simulate.sample) ->
          let name = T.system.Mds.modes.(s.Simulate.mode).Mds.name in
          let gear = gear_of_mode_name name in
          if gear > 0 then begin
            total := !total +. 1.0;
            acc := !acc +. T.eta gear s.Simulate.state.(1)
          end)
        run.Simulate.samples;
      if !total = 0.0 then infinity else 1.0 -. (!acc /. !total))

(* first-opportunity baseline: switch as soon as the state is inside the
   guard box; the observed switch speeds seed the threshold optimization
   with a known-feasible policy *)
let baseline_run (guards : Fixpoint.result) ~plan ~dwell =
  let guard label y =
    if label = "g1ND" then y.(1) <= 0.02
    else Box.mem (Fixpoint.guard_fn guards label) [| y.(1) |]
  in
  Simulate.run_policy T.system ~guard ~plan ~min_dwell:dwell
    ~sample_every:0.05 ~dt:0.01 ~max_time:400.0 [| 0.0; 0.0 |]

let clamp_into_guard guards label v =
  let b = Fixpoint.guard_fn guards label in
  max b.Box.lo.(0) (min b.Box.hi.(0) v)

let baseline_policy guards ~plan ~dwell =
  let run = baseline_run guards ~plan ~dwell in
  List.filter_map
    (fun (sw : Simulate.switch) ->
      if sw.Simulate.label = "g1ND" then None
      else
        Some
          ( sw.Simulate.label,
            clamp_into_guard guards sw.Simulate.label sw.Simulate.at.(1) ))
    run.Simulate.switches

let golden = (sqrt 5.0 -. 1.0) /. 2.0

(* plain golden-section minimization *)
let golden_section f lo hi tol counter =
  let rec search lo hi x1 x2 f1 f2 =
    if hi -. lo <= tol then (lo +. hi) /. 2.0
    else if f1 <= f2 then begin
      let hi = x2 in
      let x2 = x1 in
      let f2 = f1 in
      let x1 = hi -. (golden *. (hi -. lo)) in
      incr counter;
      search lo hi x1 x2 (f x1) f2
    end
    else begin
      let lo = x1 in
      let x1 = x2 in
      let f1 = f2 in
      let x2 = lo +. (golden *. (hi -. lo)) in
      incr counter;
      search lo hi x1 x2 f1 (f x2)
    end
  in
  let x1 = hi -. (golden *. (hi -. lo)) in
  let x2 = lo +. (golden *. (hi -. lo)) in
  counter := !counter + 2;
  search lo hi x1 x2 (f x1) (f x2)

let optimize ?(rounds = 3) ?(tolerance = 0.05) guards ~plan ~dwell objective =
  let baseline = baseline_policy guards ~plan ~dwell in
  let evaluations = ref 0 in
  let cost p =
    incr evaluations;
    cost_of_policy guards ~plan ~dwell objective p
  in
  let baseline_cost = cost baseline in
  let policy = ref baseline in
  for _ = 1 to rounds do
    List.iter
      (fun (label, _) ->
        let b = Fixpoint.guard_fn guards label in
        let lo = b.Box.lo.(0) and hi = b.Box.hi.(0) in
        let f theta =
          cost
            (List.map
               (fun (l, t) -> if l = label then (l, theta) else (l, t))
               !policy)
        in
        let best = golden_section f lo hi tolerance evaluations in
        if f best <= f (List.assoc label !policy) then
          policy :=
            List.map
              (fun (l, t) -> if l = label then (l, best) else (l, t))
              !policy)
      !policy
  done;
  let final_cost = cost !policy in
  if final_cost <= baseline_cost then
    {
      policy = !policy;
      cost = final_cost;
      baseline_cost;
      evaluations = !evaluations;
    }
  else
    {
      policy = baseline;
      cost = baseline_cost;
      baseline_cost;
      evaluations = !evaluations;
    }
