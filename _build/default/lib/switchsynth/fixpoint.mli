(** The outer guard-shrinking fixpoint loop (Section 5.2, last
    paragraph): initialize each guard with an over-approximate box, then
    iteratively shrink entry guards with the hyperbox learner, whose
    labels come from the simulation oracle, until no guard changes.

    Shrinking is monotone (each learned box is searched inside the
    current one), so the loop converges; the result is the greatest
    fixpoint, i.e. a controlled-invariant switching logic. *)

type problem = {
  sys : Hybrid.Mds.t;
  config : Label.config;
  grid : float;
  coarse : float;  (** coarse scan step for seed finding *)
  init : string -> Box.t;  (** initial guard over-approximations *)
  frozen : string list;  (** guards taken as given, never refined *)
  seed_hint : string -> float array;
      (** preferred positive point per guard (e.g. the gear's peak
          efficiency speed) *)
  max_iterations : int;
}

type result = {
  guards : (string * Box.t) list;  (** in transition order *)
  iterations : int;
  converged : bool;
  labels_queried : int;  (** total calls to the simulation oracle *)
}

val synthesize : problem -> result

val guard_fn : result -> string -> Box.t
val mem : result -> string -> float array -> bool
(** Guard membership of a guard point. *)
