module Mds = Hybrid.Mds
module Simulate = Hybrid.Simulate

type config = {
  dt : float;
  max_time : float;
  dwell : int -> float;
  guard_dims : int array;
  entry_state : int -> float array -> float array;
}

let project cfg state = Array.map (fun d -> state.(d)) cfg.guard_dims

let safe_entry cfg (sys : Mds.t) ~guards ~mode p =
  let state = cfg.entry_state mode p in
  let exits =
    Mds.outgoing sys mode
    |> List.filter (fun (tr : Mds.transition) -> tr.Mds.dst <> mode)
    |> List.map (fun (tr : Mds.transition) ->
           let box = guards tr.Mds.label in
           (* crossing detection between consecutive consulted samples:
              the first consultation is pointwise, later ones check the
              segment from the previously consulted sample *)
           let prev = ref None in
           let hit cur =
             let q = project cfg cur in
             let meets =
               match !prev with
               | None -> Box.mem box q
               | Some p0 -> Box.segment_meets box p0 q
             in
             prev := Some q;
             meets
           in
           (tr.Mds.label, hit))
  in
  match
    Simulate.in_mode sys ~mode ~exits ~min_dwell:(cfg.dwell mode) ~dt:cfg.dt
      ~max_time:cfg.max_time state
  with
  | Simulate.Exit _ -> true
  | Simulate.Unsafe _ | Simulate.Timeout _ -> false
