module T = Hybrid.Transmission
module Mds = Hybrid.Mds

let entry_state _mode point = [| 0.0; point.(0) |]

(* seeds: the gear's peak-efficiency speed is always inside the safe
   component the paper's guards converge to *)
let seed_hint label =
  let gear_peak g = [| T.a.(g - 1) |] in
  match label with
  | "gN1U" | "g11U" | "g11D" | "g21D" -> gear_peak 1
  | "g12U" | "g22U" | "g22D" | "g32D" -> gear_peak 2
  | "g23U" | "g33U" | "g33D" -> gear_peak 3
  | "g1ND" -> [| 0.0 |]
  | _ -> [| 0.0 |]

let problem ?(dwell = 0.0) ?(grid = 0.01) () =
  let dwell_of mode =
    (* the dwell requirement applies to the six gear modes, not Neutral *)
    if T.system.Mds.modes.(mode).Mds.name = "N" then 0.0 else dwell
  in
  {
    Fixpoint.sys = T.system;
    config =
      {
        Label.dt = 0.01;
        max_time = 200.0;
        dwell = dwell_of;
        guard_dims = [| 1 |];
        entry_state;
      };
    grid;
    coarse = 1.0;
    init =
      (fun label ->
        let lo, hi = T.initial_guard_overapprox label in
        Box.make ~lo:[| lo |] ~hi:[| hi |]);
    frozen = [ "g1ND" ];
    seed_hint;
    max_iterations = 10;
  }

let synthesize ?dwell ?grid () = Fixpoint.synthesize (problem ?dwell ?grid ())

let paper_eq3 =
  [
    ("gN1U", (0.0, 16.70));
    ("g11U", (0.0, 16.70));
    ("g12U", (13.29, 26.70));
    ("g22U", (13.29, 26.70));
    ("g23U", (23.29, 36.70));
    ("g33U", (23.29, 36.70));
    ("g33D", (23.29, 36.70));
    ("g32D", (13.29, 26.70));
    ("g22D", (13.29, 26.70));
    ("g21D", (0.0, 16.70));
    ("g11D", (0.0, 16.70));
    ("g1ND", (0.0, 0.0));
  ]

let paper_eq4 =
  [
    ("gN1U", (0.0, 0.0));
    ("g11U", (0.0, 0.0));
    ("g12U", (13.29, 23.42));
    ("g22U", (13.29, 23.42));
    ("g23U", (26.70, 33.42));
    ("g33U", (23.29, 33.42));
    ("g33D", (36.70, 36.70));
    ("g32D", (16.58, 26.70));
    ("g22D", (26.70, 26.70));
    ("g21D", (1.31, 16.70));
    ("g11D", (1.31, 16.70));
    ("g1ND", (0.0, 0.0));
  ]
