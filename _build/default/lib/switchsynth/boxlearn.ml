let label_count = ref 0
let labels_used () = !label_count
let reset_labels_used () = label_count := 0

let counting label p =
  incr label_count;
  label p

let snap grid v = Float.round (v /. grid) *. grid

(* Largest k in [0, steps] such that every grid point between the seed
   and [seed + k * dir * grid] along dimension [d] labels positive —
   i.e., the edge of the seed's connected component. The positive set
   need not be one interval (e.g. the transmission's vacuously-safe
   low-speed pocket is disjoint from the efficient band), so we must find
   the NEAREST label flip: gallop outward doubling the stride until the
   first negative, then bisect inside that bracket. *)
let edge_search ~grid ~label ~seed ~d ~dir ~steps =
  let probe k =
    let p = Array.copy seed in
    p.(d) <- snap grid (seed.(d) +. (float_of_int k *. dir *. grid));
    counting label p
  in
  let rec bisect lo hi =
    (* invariant: probe lo = true, probe (hi + 1) = false *)
    if lo >= hi then lo
    else
      let mid = (lo + hi + 1) / 2 in
      if probe mid then bisect mid hi else bisect lo (mid - 1)
  in
  let rec gallop last_true stride =
    let k = min steps (last_true + stride) in
    if k = last_true then last_true
    else if probe k then gallop k (2 * stride)
    else bisect last_true (k - 1)
  in
  if steps <= 0 then 0 else gallop 0 1

let learn ~grid ~label ~within ~seed =
  if Box.is_empty within || not (Box.mem within seed) then None
  else if not (counting label seed) then None
  else begin
    let d = Box.dim within in
    let seed = Array.map (snap grid) seed in
    let lo = Array.copy seed and hi = Array.copy seed in
    for i = 0 to d - 1 do
      let steps_up =
        int_of_float (Float.round ((within.Box.hi.(i) -. seed.(i)) /. grid))
      in
      let steps_down =
        int_of_float (Float.round ((seed.(i) -. within.Box.lo.(i)) /. grid))
      in
      let up = edge_search ~grid ~label ~seed ~d:i ~dir:1.0 ~steps:steps_up in
      let down =
        edge_search ~grid ~label ~seed ~d:i ~dir:(-1.0) ~steps:steps_down
      in
      hi.(i) <- snap grid (seed.(i) +. (float_of_int up *. grid));
      lo.(i) <- snap grid (seed.(i) -. (float_of_int down *. grid))
    done;
    Some (Box.snap ~grid (Box.make ~lo ~hi))
  end

let find_seed ~grid ~coarse ~label ~within ~prefer =
  if Box.is_empty within then None
  else begin
    let prefer_snapped = Array.map (snap grid) prefer in
    let clamp p =
      Array.mapi (fun i v -> max within.Box.lo.(i) (min within.Box.hi.(i) v)) p
    in
    let first = clamp prefer_snapped in
    if counting label first then Some first
    else begin
      let d = Box.dim within in
      let axis i =
        let n =
          int_of_float ((within.Box.hi.(i) -. within.Box.lo.(i)) /. coarse)
        in
        List.init (n + 1) (fun k ->
            snap grid (within.Box.lo.(i) +. (float_of_int k *. coarse)))
      in
      let candidates =
        match d with
        | 1 -> List.map (fun x -> [| x |]) (axis 0)
        | 2 ->
          List.concat_map
            (fun x -> List.map (fun y -> [| x; y |]) (axis 1))
            (axis 0)
        | _ -> invalid_arg "Boxlearn.find_seed: only 1-D and 2-D supported"
      in
      let dist p =
        let s = ref 0.0 in
        Array.iteri (fun i v -> s := !s +. abs_float (v -. prefer.(i))) p;
        !s
      in
      candidates
      |> List.filter (fun p -> Box.mem within p)
      |> List.sort (fun a b -> compare (dist a) (dist b))
      |> List.find_opt (counting label)
    end
  end
