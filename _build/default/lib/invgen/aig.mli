(** And-inverter graphs with latches.

    The netlist representation used by the invariant-generation instance
    of Section 2.4 (as in ABC). Node 0 is the constant false; a literal
    packs a node index and a complement bit ([2*node + c]). Latches carry
    an initial value and a next-state literal. *)

type t
type lit = int

val create : unit -> t
val false_ : lit
val true_ : lit
val neg : lit -> lit
val node_of : lit -> int
val is_complemented : lit -> bool

val input : t -> lit
(** Allocate a new primary input. *)

val latch : ?init:bool -> t -> lit
(** Allocate a latch (next-state set later with {!connect}). *)

val connect : t -> lit -> lit -> unit
(** [connect t latch_lit next] sets the latch's next-state function.
    [latch_lit] must be an uncomplemented latch literal. *)

val and2 : t -> lit -> lit -> lit
(** Structurally hashed; constant-folds against 0/1 and itself. *)

val or2 : t -> lit -> lit -> lit
val xor2 : t -> lit -> lit -> lit
val mux : t -> lit -> lit -> lit -> lit

val num_nodes : t -> int
val is_input_node : t -> int -> bool
val and_operands : t -> int -> (lit * lit) option
(** The two operand literals if node [i] is an AND gate. *)

val next_of : t -> lit -> lit option
(** Next-state literal of an uncomplemented latch literal. *)

val num_inputs : t -> int
val num_latches : t -> int
val latches : t -> lit list
(** Uncomplemented latch literals in allocation order. *)

val validate : t -> unit
(** Checks every latch is connected; raises otherwise. *)

(** {2 Semantics} *)

val eval :
  t -> latch_values:bool array -> input_values:bool array -> lit -> bool

val next_state :
  t -> latch_values:bool array -> input_values:bool array -> bool array

val initial_state : t -> bool array

(** {2 Bit-parallel simulation} *)

val simulate_words : t -> frames:int -> seed:int -> int array array
(** Random simulation with 62 parallel lanes: [result.(node).(frame)] is
    a 62-bit word whose lane [j] is the node's value in independent
    random trace [j] at time [frame]. *)
