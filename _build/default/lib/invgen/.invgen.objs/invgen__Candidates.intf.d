lib/invgen/candidates.mli: Aig Format
