lib/invgen/candidates.ml: Aig Array Format Hashtbl List Option
