lib/invgen/induction.mli: Aig Candidates
