lib/invgen/aig.ml: Array Hashtbl List Printf Random
