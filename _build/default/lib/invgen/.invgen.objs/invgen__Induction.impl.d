lib/invgen/induction.ml: Aig Array Candidates Hashtbl List Smt
