lib/invgen/engine.ml: Aig Array Candidates Induction List
