lib/invgen/aig.mli:
