lib/invgen/engine.mli: Aig Candidates Induction
