type kind =
  | Const0
  | Input of int
  | Latch of { idx : int; init : bool; mutable next : int option }
  | And of int * int

type t = {
  mutable kinds : kind array;
  mutable n : int;
  mutable inputs : int; (* count *)
  mutable latch_nodes : int list; (* reverse order *)
  strash : (int * int, int) Hashtbl.t;
}

type lit = int

let false_ = 0
let true_ = 1
let neg l = l lxor 1
let node_of l = l lsr 1
let is_complemented l = l land 1 = 1

let create () =
  { kinds = Array.make 16 Const0; n = 1; inputs = 0; latch_nodes = []; strash = Hashtbl.create 64 }

let alloc t kind =
  if t.n = Array.length t.kinds then begin
    let k = Array.make (2 * t.n) Const0 in
    Array.blit t.kinds 0 k 0 t.n;
    t.kinds <- k
  end;
  let i = t.n in
  t.kinds.(i) <- kind;
  t.n <- i + 1;
  i

let input t =
  let i = alloc t (Input t.inputs) in
  t.inputs <- t.inputs + 1;
  2 * i

let latch ?(init = false) t =
  let idx = List.length t.latch_nodes in
  let i = alloc t (Latch { idx; init; next = None }) in
  t.latch_nodes <- i :: t.latch_nodes;
  2 * i

let connect t latch_lit next =
  if is_complemented latch_lit then
    invalid_arg "Aig.connect: latch literal must be uncomplemented";
  match t.kinds.(node_of latch_lit) with
  | Latch l ->
    if l.next <> None then invalid_arg "Aig.connect: latch already connected";
    l.next <- Some next
  | _ -> invalid_arg "Aig.connect: not a latch"

let and2 t a b =
  if a = false_ || b = false_ then false_
  else if a = true_ then b
  else if b = true_ then a
  else if a = b then a
  else if a = neg b then false_
  else begin
    let a, b = if a < b then (a, b) else (b, a) in
    match Hashtbl.find_opt t.strash (a, b) with
    | Some i -> 2 * i
    | None ->
      let i = alloc t (And (a, b)) in
      Hashtbl.replace t.strash (a, b) i;
      2 * i
  end

let or2 t a b = neg (and2 t (neg a) (neg b))

let xor2 t a b =
  or2 t (and2 t a (neg b)) (and2 t (neg a) b)

let mux t c a b = or2 t (and2 t c a) (and2 t (neg c) b)

let num_nodes t = t.n
let is_input_node t i = match t.kinds.(i) with Input _ -> true | _ -> false

let and_operands t i =
  match t.kinds.(i) with And (a, b) -> Some (a, b) | _ -> None

let next_of t l =
  match t.kinds.(node_of l) with Latch { next; _ } -> next | _ -> None
let num_inputs t = t.inputs
let num_latches t = List.length t.latch_nodes
let latches t = List.rev_map (fun i -> 2 * i) t.latch_nodes

let validate t =
  List.iter
    (fun i ->
      match t.kinds.(i) with
      | Latch { next = None; idx; _ } ->
        invalid_arg (Printf.sprintf "Aig.validate: latch %d not connected" idx)
      | _ -> ())
    t.latch_nodes

(* evaluate all nodes bottom-up; nodes are topologically ordered by
   construction (ands reference earlier literals; latch next literals may
   point anywhere but are only read for the next state) *)
let eval_all t ~latch_values ~input_values =
  let v = Array.make t.n false in
  for i = 1 to t.n - 1 do
    v.(i) <-
      (match t.kinds.(i) with
      | Const0 -> false
      | Input k -> input_values.(k)
      | Latch { idx; _ } -> latch_values.(idx)
      | And (a, b) ->
        let la = v.(node_of a) <> is_complemented a in
        let lb = v.(node_of b) <> is_complemented b in
        la && lb)
  done;
  v

let lit_value v l = v.(node_of l) <> is_complemented l

let eval t ~latch_values ~input_values l =
  lit_value (eval_all t ~latch_values ~input_values) l

let next_state t ~latch_values ~input_values =
  let v = eval_all t ~latch_values ~input_values in
  let nexts =
    List.rev_map
      (fun i ->
        match t.kinds.(i) with
        | Latch { next = Some nx; _ } -> lit_value v nx
        | _ -> invalid_arg "Aig.next_state: unconnected latch")
      t.latch_nodes
  in
  Array.of_list nexts

let initial_state t =
  Array.of_list
    (List.rev_map
       (fun i ->
         match t.kinds.(i) with
         | Latch { init; _ } -> init
         | _ -> assert false)
       t.latch_nodes)

let lanes = 62
let lane_mask = (1 lsl lanes) - 1

let simulate_words t ~frames ~seed =
  let rng = Random.State.make [| seed |] in
  let rand_word () =
    (Random.State.bits rng
    lor (Random.State.bits rng lsl 30)
    lor (Random.State.bits rng lsl 60))
    land lane_mask
  in
  let sig_ = Array.init t.n (fun _ -> Array.make frames 0) in
  let latch_word =
    Array.of_list
      (List.rev_map
         (fun i ->
           match t.kinds.(i) with
           | Latch { init; _ } -> if init then lane_mask else 0
           | _ -> assert false)
         t.latch_nodes)
  in
  let word = Array.make t.n 0 in
  for f = 0 to frames - 1 do
    for i = 1 to t.n - 1 do
      word.(i) <-
        (match t.kinds.(i) with
        | Const0 -> 0
        | Input _ -> rand_word ()
        | Latch { idx; _ } -> latch_word.(idx)
        | And (a, b) ->
          let wa = word.(node_of a) lxor (if is_complemented a then lane_mask else 0) in
          let wb = word.(node_of b) lxor (if is_complemented b then lane_mask else 0) in
          wa land wb)
    done;
    Array.iteri (fun i w -> sig_.(i).(f) <- w) word;
    (* advance latches *)
    List.iter
      (fun i ->
        match t.kinds.(i) with
        | Latch { next = Some nx; idx; _ } ->
          let w =
            word.(node_of nx) lxor (if is_complemented nx then lane_mask else 0)
          in
          latch_word.(idx) <- w
        | _ -> invalid_arg "Aig.simulate_words: unconnected latch")
      t.latch_nodes
  done;
  sig_
