type term =
  | Const of { width : int; value : int }
  | Var of { width : int; name : string }
  | Unop of unop * term
  | Binop of binop * term * term
  | Ite of formula * term * term

and unop =
  | Bnot
  | Bneg

and binop =
  | Band
  | Bor
  | Bxor
  | Badd
  | Bsub
  | Bmul
  | Budiv
  | Burem
  | Bshl
  | Blshr
  | Bashr

and formula =
  | Btrue
  | Bfalse
  | Pvar of string
  | Eq of term * term
  | Ult of term * term
  | Ule of term * term
  | Slt of term * term
  | Sle of term * term
  | Fnot of formula
  | Fand of formula * formula
  | For of formula * formula
  | Fxor of formula * formula

let max_width = 31

let rec width = function
  | Const { width; _ } | Var { width; _ } -> width
  | Unop (_, a) | Binop (_, a, _) | Ite (_, a, _) -> width a

let width_of = width

let mask ~width = (1 lsl width) - 1
let truncate ~width v = v land mask ~width

let to_signed ~width v =
  let v = truncate ~width v in
  if v land (1 lsl (width - 1)) <> 0 then v - (1 lsl width) else v

let check_width w =
  if w < 1 || w > max_width then
    invalid_arg (Printf.sprintf "Bv: width %d out of range 1..%d" w max_width)

let check_same a b op =
  if width a <> width b then
    invalid_arg
      (Printf.sprintf "Bv.%s: width mismatch (%d vs %d)" op (width a) (width b))

let const ~width v =
  check_width width;
  Const { width; value = truncate ~width v }

let var ~width name =
  check_width width;
  Var { width; name }

(* -- constant folding helpers -- *)

let eval_unop op ~width v =
  match op with
  | Bnot -> truncate ~width (lnot v)
  | Bneg -> truncate ~width (-v)

let eval_binop op ~width a b =
  let t = truncate ~width in
  match op with
  | Band -> a land b
  | Bor -> a lor b
  | Bxor -> a lxor b
  | Badd -> t (a + b)
  | Bsub -> t (a - b)
  | Bmul -> t (a * b)
  | Budiv -> if b = 0 then mask ~width else a / b
  | Burem -> if b = 0 then a else a mod b
  | Bshl -> if b >= width then 0 else t (a lsl b)
  | Blshr -> if b >= width then 0 else a lsr b
  | Bashr ->
    let s = to_signed ~width a in
    if b >= width then t (s asr 62) else t (s asr b)

let unop op a =
  match a with
  | Const { width; value } -> Const { width; value = eval_unop op ~width value }
  | _ -> Unop (op, a)

let binop op a b =
  check_same a b
    (match op with
    | Band -> "band"
    | Bor -> "bor"
    | Bxor -> "bxor"
    | Badd -> "badd"
    | Bsub -> "bsub"
    | Bmul -> "bmul"
    | Budiv -> "budiv"
    | Burem -> "burem"
    | Bshl -> "bshl"
    | Blshr -> "blshr"
    | Bashr -> "bashr");
  match (a, b) with
  | Const { width; value = va }, Const { value = vb; _ } ->
    Const { width; value = eval_binop op ~width va vb }
  | _ -> Binop (op, a, b)

let bnot a = unop Bnot a
let bneg a = unop Bneg a
let band a b = binop Band a b
let bor a b = binop Bor a b
let bxor a b = binop Bxor a b
let badd a b = binop Badd a b
let bsub a b = binop Bsub a b
let bmul a b = binop Bmul a b
let budiv a b = binop Budiv a b
let burem a b = binop Burem a b
let bshl a b = binop Bshl a b
let blshr a b = binop Blshr a b
let bashr a b = binop Bashr a b

let tru = Btrue
let fls = Bfalse
let pvar name = Pvar name

let cmp ctor fold a b op =
  check_same a b op;
  match (a, b) with
  | Const { width; value = va }, Const { value = vb; _ } ->
    if fold ~width va vb then Btrue else Bfalse
  | _ -> ctor (a, b)

let eq a b =
  cmp (fun (a, b) -> Eq (a, b)) (fun ~width:_ x y -> x = y) a b "eq"

let ult a b =
  cmp (fun (a, b) -> Ult (a, b)) (fun ~width:_ x y -> x < y) a b "ult"

let ule a b =
  cmp (fun (a, b) -> Ule (a, b)) (fun ~width:_ x y -> x <= y) a b "ule"

let slt a b =
  cmp
    (fun (a, b) -> Slt (a, b))
    (fun ~width x y -> to_signed ~width x < to_signed ~width y)
    a b "slt"

let sle a b =
  cmp
    (fun (a, b) -> Sle (a, b))
    (fun ~width x y -> to_signed ~width x <= to_signed ~width y)
    a b "sle"

let fnot = function
  | Btrue -> Bfalse
  | Bfalse -> Btrue
  | Fnot f -> f
  | f -> Fnot f

let fand a b =
  match (a, b) with
  | Btrue, f | f, Btrue -> f
  | Bfalse, _ | _, Bfalse -> Bfalse
  | _ -> Fand (a, b)

let for_ a b =
  match (a, b) with
  | Bfalse, f | f, Bfalse -> f
  | Btrue, _ | _, Btrue -> Btrue
  | _ -> For (a, b)

let fxor a b =
  match (a, b) with
  | Bfalse, f | f, Bfalse -> f
  | Btrue, f | f, Btrue -> fnot f
  | _ -> Fxor (a, b)

let fimplies a b = for_ (fnot a) b
let fiff a b = fnot (fxor a b)
let neq a b = fnot (eq a b)
let ugt a b = ult b a
let uge a b = ule b a
let conj fs = List.fold_left fand Btrue fs
let disj fs = List.fold_left for_ Bfalse fs

let ite c a b =
  check_same a b "ite";
  match c with
  | Btrue -> a
  | Bfalse -> b
  | _ -> if a = b then a else Ite (c, a, b)

(* -- evaluation -- *)

type env = { bv : string -> int; bool : string -> bool }

let env_of_alist alist =
  {
    bv = (fun name -> match List.assoc_opt name alist with Some v -> v | None -> 0);
    bool = (fun _ -> false);
  }

let rec eval_term env = function
  | Const { value; _ } -> value
  | Var { width; name } -> truncate ~width (env.bv name)
  | Unop (op, a) ->
    let w = width a in
    eval_unop op ~width:w (eval_term env a)
  | Binop (op, a, b) ->
    let w = width a in
    eval_binop op ~width:w (eval_term env a) (eval_term env b)
  | Ite (c, a, b) -> if eval env c then eval_term env a else eval_term env b

and eval env = function
  | Btrue -> true
  | Bfalse -> false
  | Pvar name -> env.bool name
  | Eq (a, b) -> eval_term env a = eval_term env b
  | Ult (a, b) -> eval_term env a < eval_term env b
  | Ule (a, b) -> eval_term env a <= eval_term env b
  | Slt (a, b) ->
    let w = width a in
    to_signed ~width:w (eval_term env a) < to_signed ~width:w (eval_term env b)
  | Sle (a, b) ->
    let w = width a in
    to_signed ~width:w (eval_term env a) <= to_signed ~width:w (eval_term env b)
  | Fnot f -> not (eval env f)
  | Fand (a, b) -> eval env a && eval env b
  | For (a, b) -> eval env a || eval env b
  | Fxor (a, b) -> eval env a <> eval env b

(* -- substitution -- *)

let rec subst_term lookup = function
  | Const _ as t -> t
  | Var { width; name } as t -> (
    match lookup name with
    | None -> t
    | Some r ->
      if width_of r <> width then
        invalid_arg
          (Printf.sprintf "Bv.subst_term: %s replaced at wrong width" name);
      r)
  | Unop (op, a) -> unop op (subst_term lookup a)
  | Binop (op, a, b) -> binop op (subst_term lookup a) (subst_term lookup b)
  | Ite (c, a, b) ->
    ite (subst lookup c) (subst_term lookup a) (subst_term lookup b)

and subst lookup = function
  | (Btrue | Bfalse | Pvar _) as f -> f
  | Eq (a, b) -> eq (subst_term lookup a) (subst_term lookup b)
  | Ult (a, b) -> ult (subst_term lookup a) (subst_term lookup b)
  | Ule (a, b) -> ule (subst_term lookup a) (subst_term lookup b)
  | Slt (a, b) -> slt (subst_term lookup a) (subst_term lookup b)
  | Sle (a, b) -> sle (subst_term lookup a) (subst_term lookup b)
  | Fnot f -> fnot (subst lookup f)
  | Fand (a, b) -> fand (subst lookup a) (subst lookup b)
  | For (a, b) -> for_ (subst lookup a) (subst lookup b)
  | Fxor (a, b) -> fxor (subst lookup a) (subst lookup b)

(* -- free variables -- *)

let rec term_vars_acc acc = function
  | Const _ -> acc
  | Var { width; name } -> (name, width) :: acc
  | Unop (_, a) -> term_vars_acc acc a
  | Binop (_, a, b) -> term_vars_acc (term_vars_acc acc a) b
  | Ite (c, a, b) -> term_vars_acc (term_vars_acc (formula_vars_acc acc c) a) b

and formula_vars_acc acc = function
  | Btrue | Bfalse | Pvar _ -> acc
  | Eq (a, b) | Ult (a, b) | Ule (a, b) | Slt (a, b) | Sle (a, b) ->
    term_vars_acc (term_vars_acc acc a) b
  | Fnot f -> formula_vars_acc acc f
  | Fand (a, b) | For (a, b) | Fxor (a, b) ->
    formula_vars_acc (formula_vars_acc acc a) b

let term_vars t = List.sort_uniq compare (term_vars_acc [] t)
let formula_vars f = List.sort_uniq compare (formula_vars_acc [] f)

(* -- pretty printing -- *)

let unop_name = function Bnot -> "~" | Bneg -> "-"

let binop_name = function
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"
  | Badd -> "+"
  | Bsub -> "-"
  | Bmul -> "*"
  | Budiv -> "/"
  | Burem -> "%"
  | Bshl -> "<<"
  | Blshr -> ">>"
  | Bashr -> ">>a"

let rec pp_term fmt = function
  | Const { width; value } -> Format.fprintf fmt "%d:%d" value width
  | Var { name; _ } -> Format.pp_print_string fmt name
  | Unop (op, a) -> Format.fprintf fmt "%s%a" (unop_name op) pp_term a
  | Binop (op, a, b) ->
    Format.fprintf fmt "(%a %s %a)" pp_term a (binop_name op) pp_term b
  | Ite (c, a, b) ->
    Format.fprintf fmt "(ite %a %a %a)" pp c pp_term a pp_term b

and pp fmt = function
  | Btrue -> Format.pp_print_string fmt "true"
  | Bfalse -> Format.pp_print_string fmt "false"
  | Pvar name -> Format.pp_print_string fmt name
  | Eq (a, b) -> Format.fprintf fmt "(%a = %a)" pp_term a pp_term b
  | Ult (a, b) -> Format.fprintf fmt "(%a <u %a)" pp_term a pp_term b
  | Ule (a, b) -> Format.fprintf fmt "(%a <=u %a)" pp_term a pp_term b
  | Slt (a, b) -> Format.fprintf fmt "(%a <s %a)" pp_term a pp_term b
  | Sle (a, b) -> Format.fprintf fmt "(%a <=s %a)" pp_term a pp_term b
  | Fnot f -> Format.fprintf fmt "!%a" pp f
  | Fand (a, b) -> Format.fprintf fmt "(%a /\\ %a)" pp a pp b
  | For (a, b) -> Format.fprintf fmt "(%a \\/ %a)" pp a pp b
  | Fxor (a, b) -> Format.fprintf fmt "(%a xor %a)" pp a pp b
