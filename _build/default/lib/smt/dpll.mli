(** A deliberately simple DPLL solver used as a test reference.

    Recursive unit propagation + branching, no learning. Exponential on
    hard instances, but trustworthy by inspection: the CDCL solver in
    {!Sat} is differentially tested against it on random formulas. *)

type result =
  | Sat of bool array (** model indexed by variable *)
  | Unsat

val solve : nvars:int -> Lit.t list list -> result

val eval_clause : bool array -> Lit.t list -> bool
val eval : bool array -> Lit.t list list -> bool
(** [eval m cnf] checks that assignment [m] satisfies every clause. *)
