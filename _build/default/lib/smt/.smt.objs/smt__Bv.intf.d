lib/smt/bv.mli: Format
