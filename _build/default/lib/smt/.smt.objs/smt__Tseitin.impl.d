lib/smt/tseitin.ml: List Lit Sat
