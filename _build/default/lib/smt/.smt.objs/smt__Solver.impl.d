lib/smt/solver.ml: Bitblast List Option Printf Sat Tseitin
