lib/smt/dimacs.mli: Dpll Format Lit
