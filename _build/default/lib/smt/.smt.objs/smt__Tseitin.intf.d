lib/smt/tseitin.mli: Lit Sat
