lib/smt/vec.ml: Array List
