lib/smt/vec.mli:
