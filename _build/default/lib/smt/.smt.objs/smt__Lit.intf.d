lib/smt/lit.mli: Format
