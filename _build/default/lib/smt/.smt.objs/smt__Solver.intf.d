lib/smt/solver.mli: Bv
