lib/smt/dimacs.ml: Array Dpll Format List Lit Printf Sat String
