lib/smt/dpll.mli: Lit
