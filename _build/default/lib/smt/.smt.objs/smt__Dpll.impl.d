lib/smt/dpll.ml: Array List Lit
