lib/smt/bv.ml: Format List Printf
