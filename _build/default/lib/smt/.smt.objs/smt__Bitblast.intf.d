lib/smt/bitblast.mli: Bv Lit Tseitin
