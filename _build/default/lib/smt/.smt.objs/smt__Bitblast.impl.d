lib/smt/bitblast.ml: Array Bv Hashtbl Lit Option Printf Tseitin
