type result =
  | Sat of bool array
  | Unsat

let eval_clause m c = List.exists (fun l -> m.(Lit.var l) = Lit.sign l) c
let eval m cnf = List.for_all (eval_clause m) cnf

(* assignment: 1 true / 0 false / -1 unassigned *)
let lit_value assign l =
  let a = assign.(Lit.var l) in
  if a < 0 then -1 else a lxor (l land 1)

exception Conflict

(* Simplify clauses under [assign]: drop satisfied clauses, remove false
   literals, collect unit literals. Raises [Conflict] on an empty clause. *)
let rec propagate assign cnf =
  let units = ref [] in
  let rest = ref [] in
  let changed = ref false in
  let examine c =
    if not (List.exists (fun l -> lit_value assign l = 1) c) then begin
      match List.filter (fun l -> lit_value assign l < 0) c with
      | [] -> raise Conflict
      | [ u ] -> units := u :: !units
      | c' -> rest := c' :: !rest
    end
  in
  List.iter examine cnf;
  List.iter
    (fun u ->
      match lit_value assign u with
      | 1 -> ()
      | 0 -> raise Conflict
      | _ ->
        assign.(Lit.var u) <- (if Lit.sign u then 1 else 0);
        changed := true)
    !units;
  if !changed then propagate assign !rest else !rest

let solve ~nvars cnf =
  let assign = Array.make (max nvars 1) (-1) in
  let rec go cnf =
    match propagate assign cnf with
    | exception Conflict -> false
    | [] -> true
    | (l :: _) :: _ ->
      let saved = Array.copy assign in
      let try_branch lit =
        assign.(Lit.var lit) <- (if Lit.sign lit then 1 else 0);
        let ok = go cnf in
        if not ok then Array.blit saved 0 assign 0 (Array.length assign);
        ok
      in
      try_branch l || try_branch (Lit.neg l)
    | [] :: _ -> false
  in
  if go cnf then Sat (Array.map (fun a -> a = 1) assign) else Unsat
