type t = int

let make v sign =
  assert (v >= 0);
  (2 * v) + if sign then 0 else 1

let pos v = make v true
let neg_of v = make v false
let var l = l lsr 1
let sign l = l land 1 = 0
let neg l = l lxor 1
let to_int l = if sign l then var l + 1 else -(var l + 1)
let of_int i =
  assert (i <> 0);
  if i > 0 then pos (i - 1) else neg_of (-i - 1)

let pp fmt l = Format.fprintf fmt "%d" (to_int l)
