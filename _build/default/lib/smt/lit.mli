(** Propositional literals.

    Variables are non-negative integers. A literal packs a variable and a
    sign into one integer: the positive literal of variable [v] is [2 * v],
    its negation [2 * v + 1]. This is the classic MiniSat encoding: it lets
    watch lists be indexed directly by literal. *)

type t = int

val make : int -> bool -> t
(** [make v sign] is the literal on variable [v]; positive iff [sign]. *)

val pos : int -> t
val neg_of : int -> t

val var : t -> int
val sign : t -> bool
(** [sign l] is [true] for a positive literal. *)

val neg : t -> t
(** Negation; an involution. *)

val to_int : t -> int
(** DIMACS-style signed integer: variable index + 1, negative if negated. *)

val of_int : int -> t
(** Inverse of [to_int]; [of_int 0] is invalid. *)

val pp : Format.formatter -> t -> unit
