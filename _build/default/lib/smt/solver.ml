type t = { bb : Bitblast.t }

type answer =
  | Sat
  | Unsat

let create () = { bb = Bitblast.create () }
let assert_formula t f = Bitblast.assert_formula t.bb f

let check t =
  let sat = Tseitin.solver (Bitblast.context t.bb) in
  match Sat.solve_with_assumptions sat [] with
  | Sat.Sat -> Sat
  | Sat.Unsat -> Unsat

let value t name = Option.value (Bitblast.value_of t.bb name) ~default:0

let bool_value t name =
  Option.value (Bitblast.bool_value_of t.bb name) ~default:false

let model_env t = Bitblast.model_env t.bb

let check_formulas fs =
  let t = create () in
  List.iter (assert_formula t) fs;
  match check t with
  | Sat -> Ok (model_env t)
  | Unsat -> Error ()

let stats t =
  let sat = Tseitin.solver (Bitblast.context t.bb) in
  Printf.sprintf "vars=%d clauses=%d conflicts=%d" (Sat.num_vars sat)
    (Sat.num_clauses sat) (Sat.num_conflicts sat)
