(** Quantifier-free bit-vector terms and formulas (QF_BV).

    Widths are limited to 1..31 bits so that values fit comfortably in an
    OCaml [int] (products of 31-bit values still fit in 63 bits). Values
    are unsigned integers in [0, 2^width); signed operations interpret the
    top bit as the sign in two's complement.

    Construct terms with the smart constructors below — they check width
    agreement and fold constants. *)

type term = private
  | Const of { width : int; value : int }
  | Var of { width : int; name : string }
  | Unop of unop * term
  | Binop of binop * term * term
  | Ite of formula * term * term

and unop =
  | Bnot  (** bitwise complement *)
  | Bneg  (** two's complement negation *)

and binop =
  | Band
  | Bor
  | Bxor
  | Badd
  | Bsub
  | Bmul
  | Budiv  (** unsigned division; division by zero yields all-ones *)
  | Burem  (** unsigned remainder; remainder by zero yields the dividend *)
  | Bshl
  | Blshr
  | Bashr

and formula = private
  | Btrue
  | Bfalse
  | Pvar of string  (** free boolean variable *)
  | Eq of term * term
  | Ult of term * term
  | Ule of term * term
  | Slt of term * term
  | Sle of term * term
  | Fnot of formula
  | Fand of formula * formula
  | For of formula * formula
  | Fxor of formula * formula

val max_width : int

val width : term -> int

(** {2 Term constructors} *)

val const : width:int -> int -> term
(** [const ~width v] truncates [v] to [width] bits. *)

val var : width:int -> string -> term
val bnot : term -> term
val bneg : term -> term
val band : term -> term -> term
val bor : term -> term -> term
val bxor : term -> term -> term
val badd : term -> term -> term
val bsub : term -> term -> term
val bmul : term -> term -> term
val budiv : term -> term -> term
val burem : term -> term -> term
val bshl : term -> term -> term
val blshr : term -> term -> term
val bashr : term -> term -> term
val ite : formula -> term -> term -> term

(** {2 Formula constructors} *)

val tru : formula
val fls : formula
val pvar : string -> formula
val eq : term -> term -> formula
val neq : term -> term -> formula
val ult : term -> term -> formula
val ule : term -> term -> formula
val ugt : term -> term -> formula
val uge : term -> term -> formula
val slt : term -> term -> formula
val sle : term -> term -> formula
val fnot : formula -> formula
val fand : formula -> formula -> formula
val for_ : formula -> formula -> formula
val fxor : formula -> formula -> formula
val fimplies : formula -> formula -> formula
val fiff : formula -> formula -> formula
val conj : formula list -> formula
val disj : formula list -> formula

(** {2 Evaluation} *)

type env = { bv : string -> int; bool : string -> bool }

val env_of_alist : (string * int) list -> env
(** Unknown bit-vector variables evaluate to 0, booleans to [false]. *)

val eval_term : env -> term -> int
val eval : env -> formula -> bool

(** {2 Semantics helpers} *)

val truncate : width:int -> int -> int
val to_signed : width:int -> int -> int
(** Reinterpret an unsigned [width]-bit value as a signed integer. *)

val subst_term : (string -> term option) -> term -> term
(** Capture-free substitution of bit-vector variables. The replacement
    must have the same width as the variable it replaces. *)

val subst : (string -> term option) -> formula -> formula

val term_vars : term -> (string * int) list
val formula_vars : formula -> (string * int) list
(** Free bit-vector variables with their widths, deduplicated. *)

val pp_term : Format.formatter -> term -> unit
val pp : Format.formatter -> formula -> unit
