(** Growable arrays specialised for the SAT solver's hot loops.

    [Vec.t] is a polymorphic growable array; [Ivec.t] is an unboxed
    growable array of [int]s used for trails, watch lists and clauses. *)

type 'a t

val create : unit -> 'a t
val make : int -> 'a -> 'a t
val size : 'a t -> int
val is_empty : 'a t -> bool
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a
val last : 'a t -> 'a
val clear : 'a t -> unit
val shrink : 'a t -> int -> unit
(** [shrink v n] truncates [v] to its first [n] elements. *)

val iter : ('a -> unit) -> 'a t -> unit
val to_list : 'a t -> 'a list
val of_list : 'a list -> 'a t

module Ivec : sig
  type t

  val create : unit -> t
  val size : t -> int
  val get : t -> int -> int
  val set : t -> int -> int -> unit
  val push : t -> int -> unit
  val pop : t -> int
  val last : t -> int
  val clear : t -> unit
  val shrink : t -> int -> unit
  val iter : (int -> unit) -> t -> unit
  val to_list : t -> int list
end
