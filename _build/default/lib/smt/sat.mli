(** A CDCL SAT solver.

    Implements the standard conflict-driven clause learning architecture:
    two-watched-literal unit propagation, first-UIP conflict analysis with
    non-chronological backjumping, VSIDS variable activities with phase
    saving, and Luby-sequence restarts. This is the deductive engine [D]
    underneath every bit-vector query in the repository.

    Usage: create a solver, allocate variables with [new_var], add clauses
    (lists of {!Lit.t}), then call [solve]. *)

type t

type result =
  | Sat
  | Unsat

val create : unit -> t

val new_var : t -> int
(** Allocate a fresh variable and return its index. *)

val num_vars : t -> int
val num_clauses : t -> int
val num_conflicts : t -> int
(** Conflicts encountered during all [solve] calls so far. *)

val add_clause : t -> Lit.t list -> unit
(** Add a clause. Tautologies are dropped; the empty clause makes the
    instance trivially unsatisfiable. All mentioned variables must have
    been allocated with [new_var]. Clauses may only be added before
    [solve] is called. *)

val solve : t -> result
(** Decide satisfiability. May be called once per solver. *)

val solve_with_assumptions : t -> Lit.t list -> result
(** Like [solve] but under the given assumption literals. The solver can
    be re-used across calls with different assumptions, and clauses may be
    added between calls. *)

val value : t -> int -> bool
(** [value s v] is the truth value of variable [v] in the model found by
    the last successful [solve]. Unassigned variables read as [false]. *)

val model : t -> bool array
(** The full model (indexed by variable) after a [Sat] answer. *)
