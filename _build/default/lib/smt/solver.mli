(** User-facing QF_BV satisfiability interface.

    This is the deductive engine handed to the sciduction applications:
    assert formulas, check, read back a model. The solver is incremental
    in the "assert more, check again" sense (no retraction). *)

type t

type answer =
  | Sat
  | Unsat

val create : unit -> t
val assert_formula : t -> Bv.formula -> unit
val check : t -> answer

val value : t -> string -> int
(** Model value of a bit-vector variable after a [Sat] answer; variables
    the solver never saw read as 0. *)

val bool_value : t -> string -> bool
val model_env : t -> Bv.env

val check_formulas : Bv.formula list -> (Bv.env, unit) result
(** One-shot convenience: satisfiability of a conjunction. [Ok env]
    carries the model; [Error ()] means unsatisfiable. *)

val stats : t -> string
(** Human-readable solver statistics (variables, clauses, conflicts). *)
