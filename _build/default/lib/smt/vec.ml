type 'a t = { mutable data : 'a array; mutable sz : int }

let create () = { data = [||]; sz = 0 }
let make n x = { data = Array.make (max n 1) x; sz = n }
let size v = v.sz
let is_empty v = v.sz = 0

let get v i =
  assert (i >= 0 && i < v.sz);
  v.data.(i)

let set v i x =
  assert (i >= 0 && i < v.sz);
  v.data.(i) <- x

let grow v x =
  let cap = Array.length v.data in
  let data = Array.make (max 4 (2 * cap)) x in
  Array.blit v.data 0 data 0 v.sz;
  v.data <- data

let push v x =
  if v.sz = Array.length v.data then grow v x;
  v.data.(v.sz) <- x;
  v.sz <- v.sz + 1

let pop v =
  assert (v.sz > 0);
  v.sz <- v.sz - 1;
  v.data.(v.sz)

let last v =
  assert (v.sz > 0);
  v.data.(v.sz - 1)

let clear v = v.sz <- 0

let shrink v n =
  assert (n >= 0 && n <= v.sz);
  v.sz <- n

let iter f v =
  for i = 0 to v.sz - 1 do
    f v.data.(i)
  done

let to_list v =
  let rec go i acc = if i < 0 then acc else go (i - 1) (v.data.(i) :: acc) in
  go (v.sz - 1) []

let of_list xs =
  let v = create () in
  List.iter (push v) xs;
  v

module Ivec = struct
  type nonrec t = { mutable data : int array; mutable sz : int }

  let create () = { data = [||]; sz = 0 }
  let size v = v.sz

  let get v i =
    assert (i >= 0 && i < v.sz);
    Array.unsafe_get v.data i

  let set v i x =
    assert (i >= 0 && i < v.sz);
    Array.unsafe_set v.data i x

  let grow v =
    let cap = Array.length v.data in
    let data = Array.make (max 4 (2 * cap)) 0 in
    Array.blit v.data 0 data 0 v.sz;
    v.data <- data

  let push v x =
    if v.sz = Array.length v.data then grow v;
    v.data.(v.sz) <- x;
    v.sz <- v.sz + 1

  let pop v =
    assert (v.sz > 0);
    v.sz <- v.sz - 1;
    v.data.(v.sz)

  let last v =
    assert (v.sz > 0);
    v.data.(v.sz - 1)

  let clear v = v.sz <- 0

  let shrink v n =
    assert (n >= 0 && n <= v.sz);
    v.sz <- n

  let iter f v =
    for i = 0 to v.sz - 1 do
      f v.data.(i)
    done

  let to_list v =
    let rec go i acc = if i < 0 then acc else go (i - 1) (v.data.(i) :: acc) in
    go (v.sz - 1) []
end
