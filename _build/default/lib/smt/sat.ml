module Ivec = Vec.Ivec

type result =
  | Sat
  | Unsat

type t = {
  mutable ok : bool; (* false once an empty clause has been derived *)
  clauses : int array Vec.t;
  mutable watches : Ivec.t array; (* indexed by literal *)
  mutable assign : int array; (* per var: 1 true, 0 false, -1 unassigned *)
  mutable level : int array;
  mutable reason : int array; (* clause index or -1 *)
  mutable phase : bool array; (* saved polarity *)
  mutable activity : float array;
  mutable heap_pos : int array; (* position in [heap], -1 if absent *)
  heap : Ivec.t;
  trail : Ivec.t;
  trail_lim : Ivec.t;
  mutable qhead : int;
  mutable nvars : int;
  mutable var_inc : float;
  mutable conflicts : int;
  mutable saved_model : bool array;
}

let create () =
  {
    ok = true;
    clauses = Vec.create ();
    watches = [||];
    assign = [||];
    level = [||];
    reason = [||];
    phase = [||];
    activity = [||];
    heap_pos = [||];
    heap = Ivec.create ();
    trail = Ivec.create ();
    trail_lim = Ivec.create ();
    qhead = 0;
    nvars = 0;
    var_inc = 1.0;
    conflicts = 0;
    saved_model = [||];
  }

let num_vars s = s.nvars
let num_clauses s = Vec.size s.clauses
let num_conflicts s = s.conflicts

(* ----- variable order heap (max-heap on activity) ----- *)

let heap_lt s a b = s.activity.(a) > s.activity.(b)

let rec heap_up s i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    let vi = Ivec.get s.heap i and vp = Ivec.get s.heap p in
    if heap_lt s vi vp then begin
      Ivec.set s.heap i vp;
      Ivec.set s.heap p vi;
      s.heap_pos.(vp) <- i;
      s.heap_pos.(vi) <- p;
      heap_up s p
    end
  end

let rec heap_down s i =
  let n = Ivec.size s.heap in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  if l < n then begin
    let c =
      if r < n && heap_lt s (Ivec.get s.heap r) (Ivec.get s.heap l) then r
      else l
    in
    let vi = Ivec.get s.heap i and vc = Ivec.get s.heap c in
    if heap_lt s vc vi then begin
      Ivec.set s.heap i vc;
      Ivec.set s.heap c vi;
      s.heap_pos.(vc) <- i;
      s.heap_pos.(vi) <- c;
      heap_down s c
    end
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    Ivec.push s.heap v;
    s.heap_pos.(v) <- Ivec.size s.heap - 1;
    heap_up s (Ivec.size s.heap - 1)
  end

let heap_pop_max s =
  let top = Ivec.get s.heap 0 in
  let lst = Ivec.pop s.heap in
  s.heap_pos.(top) <- -1;
  if Ivec.size s.heap > 0 then begin
    Ivec.set s.heap 0 lst;
    s.heap_pos.(lst) <- 0;
    heap_down s 0
  end;
  top

(* ----- variables ----- *)

let grow_to len arr fill =
  let n = Array.length arr in
  if len <= n then arr
  else begin
    let a = Array.make (max len (max 16 (2 * n))) fill in
    Array.blit arr 0 a 0 n;
    a
  end

let new_var s =
  let v = s.nvars in
  s.nvars <- v + 1;
  s.assign <- grow_to s.nvars s.assign (-1);
  s.level <- grow_to s.nvars s.level 0;
  s.reason <- grow_to s.nvars s.reason (-1);
  s.phase <- grow_to s.nvars s.phase false;
  s.activity <- grow_to s.nvars s.activity 0.0;
  s.heap_pos <- grow_to s.nvars s.heap_pos (-1);
  if Array.length s.watches < 2 * s.nvars then begin
    let w = Array.init (max 32 (4 * s.nvars)) (fun _ -> Ivec.create ()) in
    Array.blit s.watches 0 w 0 (Array.length s.watches);
    s.watches <- w
  end;
  heap_insert s v;
  v

let lit_value s l =
  let a = s.assign.(Lit.var l) in
  if a < 0 then -1 else a lxor (l land 1)

let decision_level s = Ivec.size s.trail_lim

let enqueue s p reason =
  let v = Lit.var p in
  assert (s.assign.(v) < 0);
  s.assign.(v) <- (if Lit.sign p then 1 else 0);
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  Ivec.push s.trail p

let new_decision_level s = Ivec.push s.trail_lim (Ivec.size s.trail)

let cancel_until s lvl =
  if decision_level s > lvl then begin
    let bound = Ivec.get s.trail_lim lvl in
    for i = Ivec.size s.trail - 1 downto bound do
      let p = Ivec.get s.trail i in
      let v = Lit.var p in
      s.phase.(v) <- Lit.sign p;
      s.assign.(v) <- -1;
      s.reason.(v) <- -1;
      heap_insert s v
    done;
    s.qhead <- bound;
    Ivec.shrink s.trail bound;
    Ivec.shrink s.trail_lim lvl
  end

(* ----- activity ----- *)

let var_rescale s =
  for v = 0 to s.nvars - 1 do
    s.activity.(v) <- s.activity.(v) *. 1e-100
  done;
  s.var_inc <- s.var_inc *. 1e-100

let var_bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then var_rescale s;
  if s.heap_pos.(v) >= 0 then heap_up s s.heap_pos.(v)

let var_decay s = s.var_inc <- s.var_inc /. 0.95

(* ----- clauses ----- *)

let attach s ci =
  let c = Vec.get s.clauses ci in
  Ivec.push s.watches.(c.(0)) ci;
  Ivec.push s.watches.(c.(1)) ci

let add_clause_internal s lits =
  (* Caller guarantees: no duplicates, no tautology, size >= 2,
     no literal true at level 0, no literal false at level 0. *)
  let c = Array.of_list lits in
  Vec.push s.clauses c;
  attach s (Vec.size s.clauses - 1)

let add_clause s lits =
  assert (decision_level s = 0);
  if s.ok then begin
    let lits = List.sort_uniq compare lits in
    let tauto =
      List.exists (fun l -> List.mem (Lit.neg l) lits) lits
      || List.exists (fun l -> lit_value s l = 1) lits
    in
    if not tauto then begin
      let lits = List.filter (fun l -> lit_value s l <> 0) lits in
      match lits with
      | [] -> s.ok <- false
      | [ p ] -> enqueue s p (-1)
      | _ -> add_clause_internal s lits
    end
  end

(* ----- propagation ----- *)

let propagate s =
  let confl = ref (-1) in
  while !confl < 0 && s.qhead < Ivec.size s.trail do
    let p = Ivec.get s.trail s.qhead in
    s.qhead <- s.qhead + 1;
    let false_lit = Lit.neg p in
    let ws = s.watches.(false_lit) in
    let n = Ivec.size ws in
    let j = ref 0 in
    let i = ref 0 in
    while !i < n do
      let ci = Ivec.get ws !i in
      incr i;
      if !confl >= 0 then begin
        (* conflict already found: keep remaining watches untouched *)
        Ivec.set ws !j ci;
        incr j
      end
      else begin
        let c = Vec.get s.clauses ci in
        if c.(0) = false_lit then begin
          c.(0) <- c.(1);
          c.(1) <- false_lit
        end;
        if lit_value s c.(0) = 1 then begin
          Ivec.set ws !j ci;
          incr j
        end
        else begin
          let len = Array.length c in
          let k = ref 2 in
          while !k < len && lit_value s c.(!k) = 0 do
            incr k
          done;
          if !k < len then begin
            (* found a replacement watch *)
            c.(1) <- c.(!k);
            c.(!k) <- false_lit;
            Ivec.push s.watches.(c.(1)) ci
          end
          else begin
            Ivec.set ws !j ci;
            incr j;
            if lit_value s c.(0) = 0 then confl := ci
            else enqueue s c.(0) ci
          end
        end
      end
    done;
    Ivec.shrink ws !j
  done;
  !confl

(* ----- conflict analysis (first UIP) ----- *)

let analyze s confl seen =
  let learnt = ref [] in
  let path_c = ref 0 in
  let p = ref (-1) in
  let index = ref (Ivec.size s.trail - 1) in
  let confl = ref confl in
  let continue = ref true in
  while !continue do
    let c = Vec.get s.clauses !confl in
    let start = if !p < 0 then 0 else 1 in
    for j = start to Array.length c - 1 do
      let q = c.(j) in
      let v = Lit.var q in
      if (not (Bytes.unsafe_get seen v = '\001')) && s.level.(v) > 0 then begin
        Bytes.unsafe_set seen v '\001';
        var_bump s v;
        if s.level.(v) >= decision_level s then incr path_c
        else learnt := q :: !learnt
      end
    done;
    (* find the next marked literal on the trail *)
    while Bytes.get seen (Lit.var (Ivec.get s.trail !index)) <> '\001' do
      decr index
    done;
    p := Ivec.get s.trail !index;
    decr index;
    Bytes.set seen (Lit.var !p) '\000';
    decr path_c;
    if !path_c > 0 then confl := s.reason.(Lit.var !p) else continue := false
  done;
  let asserting = Lit.neg !p in
  (* local clause minimization (Sörensson–Biere): a literal is redundant
     when every antecedent in its reason clause is already in the learnt
     clause (still marked seen) or assigned at level 0 *)
  let redundant q =
    let r = s.reason.(Lit.var q) in
    r >= 0
    && Array.for_all
         (fun p ->
           Lit.var p = Lit.var q
           || Bytes.get seen (Lit.var p) = '\001'
           || s.level.(Lit.var p) = 0)
         (Vec.get s.clauses r)
  in
  let minimized = List.filter (fun q -> not (redundant q)) !learnt in
  List.iter (fun q -> Bytes.set seen (Lit.var q) '\000') !learnt;
  let learnt = ref minimized in
  (* backjump level = max level among the non-asserting literals *)
  match !learnt with
  | [] -> (asserting, [], 0)
  | rest ->
    let best =
      List.fold_left
        (fun acc q -> if s.level.(Lit.var q) > s.level.(Lit.var acc) then q else acc)
        (List.hd rest) rest
    in
    let rest = best :: List.filter (fun q -> q != best) rest in
    (asserting, rest, s.level.(Lit.var best))

(* ----- search ----- *)

exception Found of result

let rec luby i =
  (* Luby restart sequence (1-indexed): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
  let k = ref 1 in
  while (1 lsl !k) - 1 < i do
    incr k
  done;
  if (1 lsl !k) - 1 = i then 1 lsl (!k - 1)
  else luby (i - (1 lsl (!k - 1)) + 1)

let save_model s =
  let m = Array.make s.nvars false in
  for v = 0 to s.nvars - 1 do
    m.(v) <- s.assign.(v) = 1
  done;
  s.saved_model <- m

let handle_conflict s seen ci =
  s.conflicts <- s.conflicts + 1;
  if decision_level s = 0 then raise (Found Unsat);
  let asserting, rest, blevel = analyze s ci seen in
  cancel_until s blevel;
  (match rest with
  | [] -> enqueue s asserting (-1)
  | _ ->
    let c = Array.of_list (asserting :: rest) in
    Vec.push s.clauses c;
    let ci = Vec.size s.clauses - 1 in
    attach s ci;
    enqueue s asserting ci);
  var_decay s

(* Re-establish assumptions as pseudo-decisions; raises [Found Unsat] when
   an assumption is already false under the current prefix. *)
let rec assume s assumptions =
  if decision_level s < Array.length assumptions then begin
    let p = assumptions.(decision_level s) in
    match lit_value s p with
    | 1 -> new_decision_level s; assume s assumptions
    | 0 -> raise (Found Unsat)
    | _ ->
      new_decision_level s;
      enqueue s p (-1);
      (* propagate before the next assumption so values are visible *)
      let ci = propagate s in
      if ci >= 0 then raise (Found Unsat) else assume s assumptions
  end

let decide s =
  let rec pick () =
    if Ivec.size s.heap = 0 then None
    else
      let v = heap_pop_max s in
      if s.assign.(v) < 0 then Some v else pick ()
  in
  match pick () with
  | None ->
    save_model s;
    raise (Found Sat)
  | Some v ->
    new_decision_level s;
    enqueue s (Lit.make v s.phase.(v)) (-1)

let search s seen assumptions budget =
  let local = ref 0 in
  let rec loop () =
    let ci = propagate s in
    if ci >= 0 then begin
      incr local;
      handle_conflict s seen ci;
      loop ()
    end
    else if !local >= budget then begin
      cancel_until s 0;
      `Restart
    end
    else begin
      assume s assumptions;
      decide s;
      loop ()
    end
  in
  loop ()

let solve_with_assumptions s assumptions =
  if not s.ok then Unsat
  else begin
    let assumptions = Array.of_list assumptions in
    let seen = Bytes.make (max 1 s.nvars) '\000' in
    try
      let rec run i =
        match search s seen assumptions (100 * luby i) with
        | `Restart -> run (i + 1)
      in
      run 1
    with Found r ->
      cancel_until s 0;
      r
  end

let solve s = solve_with_assumptions s []

let value s v =
  if v < Array.length s.saved_model then s.saved_model.(v) else false

let model s = Array.copy s.saved_model
