type word = int list

type t = {
  alphabet : int;
  num_states : int;
  start : int;
  accept : bool array;
  delta : int array array;
}

let make ~alphabet ~start ~accept ~delta =
  let n = Array.length accept in
  if Array.length delta <> n then invalid_arg "Dfa.make: delta arity";
  if start < 0 || start >= n then invalid_arg "Dfa.make: start out of range";
  Array.iter
    (fun row ->
      if Array.length row <> alphabet then invalid_arg "Dfa.make: incomplete row";
      Array.iter
        (fun q -> if q < 0 || q >= n then invalid_arg "Dfa.make: target out of range")
        row)
    delta;
  { alphabet; num_states = n; start; accept; delta }

let run t w = List.fold_left (fun q a -> t.delta.(q).(a)) t.start w
let accepts t w = t.accept.(run t w)
let complement t = { t with accept = Array.map not t.accept }

let product a b ~acc =
  if a.alphabet <> b.alphabet then invalid_arg "Dfa.product: alphabet mismatch";
  (* explore reachable pairs breadth-first *)
  let code qa qb = (qa * b.num_states) + qb in
  let ids = Hashtbl.create 64 in
  let states = ref [] in
  let count = ref 0 in
  let queue = Queue.create () in
  let intern qa qb =
    let c = code qa qb in
    match Hashtbl.find_opt ids c with
    | Some i -> i
    | None ->
      let i = !count in
      incr count;
      Hashtbl.replace ids c i;
      states := (qa, qb) :: !states;
      Queue.add (qa, qb) queue;
      i
  in
  let start = intern a.start b.start in
  let trans = ref [] in
  while not (Queue.is_empty queue) do
    let qa, qb = Queue.pop queue in
    let i = Hashtbl.find ids (code qa qb) in
    let row =
      Array.init a.alphabet (fun s -> intern a.delta.(qa).(s) b.delta.(qb).(s))
    in
    trans := (i, row) :: !trans
  done;
  let n = !count in
  let delta = Array.make n [||] in
  List.iter (fun (i, row) -> delta.(i) <- row) !trans;
  let accept = Array.make n false in
  List.iteri
    (fun k (qa, qb) ->
      let i = !count - 1 - k in
      ignore i;
      let idx = Hashtbl.find ids (code qa qb) in
      accept.(idx) <- acc a.accept.(qa) b.accept.(qb))
    !states;
  { alphabet = a.alphabet; num_states = n; start; accept; delta }

let inter a b = product a b ~acc:( && )
let union a b = product a b ~acc:( || )

let find_accepted t =
  (* BFS for a shortest accepted word *)
  let visited = Array.make t.num_states false in
  let queue = Queue.create () in
  Queue.add (t.start, []) queue;
  visited.(t.start) <- true;
  let rec go () =
    if Queue.is_empty queue then None
    else
      let q, path = Queue.pop queue in
      if t.accept.(q) then Some (List.rev path)
      else begin
        for s = 0 to t.alphabet - 1 do
          let q' = t.delta.(q).(s) in
          if not visited.(q') then begin
            visited.(q') <- true;
            Queue.add (q', s :: path) queue
          end
        done;
        go ()
      end
  in
  go ()

let subset a b =
  match find_accepted (inter a (complement b)) with
  | None -> Ok ()
  | Some w -> Error w

let equal a b =
  match subset a b with
  | Error w -> Error w
  | Ok () -> subset b a

let reachable t =
  let visited = Array.make t.num_states false in
  let queue = Queue.create () in
  visited.(t.start) <- true;
  Queue.add t.start queue;
  while not (Queue.is_empty queue) do
    let q = Queue.pop queue in
    Array.iter
      (fun q' ->
        if not visited.(q') then begin
          visited.(q') <- true;
          Queue.add q' queue
        end)
      t.delta.(q)
  done;
  visited

let minimize t =
  let alive = reachable t in
  (* Moore refinement: classes identified by (acceptance, successor
     classes), iterated to fixpoint over reachable states *)
  let cls = Array.init t.num_states (fun q -> if t.accept.(q) then 1 else 0) in
  let changed = ref true in
  while !changed do
    changed := false;
    let sig_of q =
      (cls.(q), Array.to_list (Array.map (fun q' -> cls.(q')) t.delta.(q)))
    in
    let tbl = Hashtbl.create 16 in
    let next = Array.make t.num_states (-1) in
    let count = ref 0 in
    for q = 0 to t.num_states - 1 do
      if alive.(q) then begin
        let s = sig_of q in
        match Hashtbl.find_opt tbl s with
        | Some c -> next.(q) <- c
        | None ->
          Hashtbl.replace tbl s !count;
          next.(q) <- !count;
          incr count
      end
    done;
    let differs = ref false in
    (* classes changed iff the partition got finer *)
    let seen = Hashtbl.create 16 in
    for q = 0 to t.num_states - 1 do
      if alive.(q) then begin
        match Hashtbl.find_opt seen cls.(q) with
        | None -> Hashtbl.replace seen cls.(q) next.(q)
        | Some c -> if c <> next.(q) then differs := true
      end
    done;
    if !differs then begin
      Array.blit next 0 cls 0 t.num_states;
      changed := true
    end
    else Array.blit next 0 cls 0 t.num_states
  done;
  let n = ref 0 in
  Array.iteri (fun q c -> if alive.(q) then n := max !n (c + 1)) cls;
  let n = !n in
  let delta = Array.make n [||] in
  let accept = Array.make n false in
  for q = 0 to t.num_states - 1 do
    if alive.(q) then begin
      accept.(cls.(q)) <- t.accept.(q);
      if delta.(cls.(q)) = [||] then
        delta.(cls.(q)) <- Array.map (fun q' -> cls.(q')) t.delta.(q)
    end
  done;
  { alphabet = t.alphabet; num_states = n; start = cls.(t.start); accept; delta }

let universal ~alphabet =
  make ~alphabet ~start:0 ~accept:[| true |] ~delta:[| Array.make alphabet 0 |]

let empty ~alphabet =
  make ~alphabet ~start:0 ~accept:[| false |] ~delta:[| Array.make alphabet 0 |]

let of_words ~alphabet words =
  (* trie + dead state *)
  let module M = Map.Make (struct
    type t = int list

    let compare = compare
  end) in
  let prefixes =
    (* map each prefix of each word to "is a full word" *)
    List.fold_left
      (fun acc w ->
        let rec go acc pref rest =
          let acc =
            M.update (List.rev pref)
              (function None -> Some (rest = []) | Some b -> Some (b || rest = []))
              acc
          in
          match rest with [] -> acc | a :: tl -> go acc (a :: pref) tl
        in
        go acc [] w)
      (M.singleton [] (List.mem [] words))
      words
  in
  let nodes = M.bindings prefixes in
  let index = Hashtbl.create 16 in
  List.iteri (fun i (p, _) -> Hashtbl.replace index p i) nodes;
  let dead = List.length nodes in
  let n = dead + 1 in
  let delta =
    Array.init n (fun i ->
        if i = dead then Array.make alphabet dead
        else
          let p, _ = List.nth nodes i in
          Array.init alphabet (fun s ->
              match Hashtbl.find_opt index (p @ [ s ]) with
              | Some j -> j
              | None -> dead))
  in
  let accept =
    Array.init n (fun i -> i <> dead && snd (List.nth nodes i))
  in
  make ~alphabet ~start:(Hashtbl.find index []) ~accept ~delta

let pp fmt t =
  Format.fprintf fmt "@[<v>dfa: %d states over %d symbols, start %d@,"
    t.num_states t.alphabet t.start;
  Array.iteri
    (fun q row ->
      Format.fprintf fmt "%s%d:" (if t.accept.(q) then "*" else " ") q;
      Array.iteri (fun s q' -> Format.fprintf fmt " %d->%d" s q') row;
      Format.pp_print_cut fmt ())
    t.delta;
  Format.fprintf fmt "@]"
