(** Angluin's L* algorithm.

    The inductive inference engine of the assume-guarantee instance
    (Section 2.4): learns a DFA from a membership oracle and an
    equivalence oracle. The observation table is kept closed and
    consistent; counterexamples are handled by adding all their prefixes
    to the row set (Angluin's original policy). *)

type stats = {
  membership_queries : int;
  equivalence_queries : int;
  rounds : int;
}

val learn :
  alphabet:int ->
  membership:(Dfa.word -> bool) ->
  equivalence:(Dfa.t -> Dfa.word option) ->
  ?max_rounds:int ->
  unit ->
  Dfa.t * stats
(** The returned DFA is the hypothesis the equivalence oracle accepted.
    Raises [Failure] when [max_rounds] (default 200) is exhausted. *)

val learn_exact : target:Dfa.t -> Dfa.t * stats
(** Learn a known target by answering both oracle types from it; for
    testing, and for the ablation that counts queries. *)
