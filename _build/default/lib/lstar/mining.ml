module Wmap = Map.Make (struct
  type t = Dfa.word

  let compare = compare
end)

let prefixes w =
  let rec go acc pref = function
    | [] -> List.rev acc
    | a :: rest -> go ((List.rev (a :: pref)) :: acc) (a :: pref) rest
  in
  go [ [] ] [] w

let prefix_tree ~alphabet traces =
  let nodes =
    List.fold_left
      (fun acc w -> List.fold_left (fun acc p -> Wmap.add p () acc) acc (prefixes w))
      Wmap.empty traces
  in
  let node_list = List.map fst (Wmap.bindings nodes) in
  let index = Hashtbl.create 64 in
  List.iteri (fun i p -> Hashtbl.replace index p i) node_list;
  let n = List.length node_list in
  let dead = n in
  let delta =
    Array.init (n + 1) (fun i ->
        if i = dead then Array.make alphabet dead
        else
          let p = List.nth node_list i in
          Array.init alphabet (fun a ->
              match Hashtbl.find_opt index (p @ [ a ]) with
              | Some j -> j
              | None -> dead))
  in
  let accept = Array.init (n + 1) (fun i -> i <> dead) in
  Dfa.make ~alphabet ~start:(Hashtbl.find index []) ~accept ~delta

(* the set of live continuations of length <= k from state q, as a
   canonical sorted list of words *)
let k_tail (d : Dfa.t) k q =
  if not d.Dfa.accept.(q) then None (* the dead class *)
  else begin
    let acc = ref [] in
    let rec go q word depth =
      if d.Dfa.accept.(q) then begin
        acc := List.rev word :: !acc;
        if depth < k then
          for a = 0 to d.Dfa.alphabet - 1 do
            go d.Dfa.delta.(q).(a) (a :: word) (depth + 1)
          done
      end
    in
    go q [] 0;
    Some (List.sort_uniq compare !acc)
  end

let mine ~alphabet ?(k = 2) traces =
  let t = prefix_tree ~alphabet traces in
  let signature = Array.init t.Dfa.num_states (k_tail t k) in
  (* class id per distinct signature *)
  let classes = Hashtbl.create 16 in
  let class_of = Array.make t.Dfa.num_states (-1) in
  Array.iteri
    (fun q s ->
      match Hashtbl.find_opt classes s with
      | Some c -> class_of.(q) <- c
      | None ->
        let c = Hashtbl.length classes in
        Hashtbl.replace classes s c;
        class_of.(q) <- c)
    signature;
  let n = Hashtbl.length classes in
  (* The quotient is nondeterministic: different members of a class can
     move to different classes on the same symbol. Take the union of the
     targets and determinize by subset construction (acceptance = the
     subset contains a live class), so every original trace path is
     preserved. *)
  let module Iset = Set.Make (Int) in
  let nfa_delta = Array.make_matrix n alphabet Iset.empty in
  Array.iteri
    (fun q c ->
      if t.Dfa.accept.(q) then
        for a = 0 to alphabet - 1 do
          let q' = t.Dfa.delta.(q).(a) in
          if t.Dfa.accept.(q') then
            nfa_delta.(c).(a) <- Iset.add class_of.(q') nfa_delta.(c).(a)
        done)
    class_of;
  (* subset construction over live classes only; the empty subset is the
     dead state *)
  let ids = Hashtbl.create 16 in
  let states = ref [] in
  let count = ref 0 in
  let queue = Queue.create () in
  let intern s =
    match Hashtbl.find_opt ids s with
    | Some i -> i
    | None ->
      let i = !count in
      incr count;
      Hashtbl.replace ids s i;
      states := (i, s) :: !states;
      Queue.add s queue;
      i
  in
  let start = intern (Iset.singleton class_of.(t.Dfa.start)) in
  let trans = ref [] in
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    let i = Hashtbl.find ids s in
    let row =
      Array.init alphabet (fun a ->
          let target =
            Iset.fold (fun c acc -> Iset.union nfa_delta.(c).(a) acc) s Iset.empty
          in
          intern target)
    in
    trans := (i, row) :: !trans
  done;
  let m = !count in
  let delta = Array.make m [||] in
  List.iter (fun (i, row) -> delta.(i) <- row) !trans;
  let accept = Array.make m false in
  List.iter (fun (i, s) -> accept.(i) <- not (Iset.is_empty s)) !states;
  Dfa.minimize (Dfa.make ~alphabet ~start ~accept ~delta)

let consistent d traces =
  List.for_all
    (fun w -> List.for_all (Dfa.accepts d) (prefixes w))
    traces

let is_prefix_closed (d : Dfa.t) =
  (* every transition out of a rejecting state must stay rejecting, on
     the reachable part *)
  let ok = ref true in
  let visited = Array.make d.Dfa.num_states false in
  let queue = Queue.create () in
  visited.(d.Dfa.start) <- true;
  Queue.add d.Dfa.start queue;
  while not (Queue.is_empty queue) do
    let q = Queue.pop queue in
    Array.iter
      (fun q' ->
        if (not d.Dfa.accept.(q)) && d.Dfa.accept.(q') then ok := false;
        if not visited.(q') then begin
          visited.(q') <- true;
          Queue.add q' queue
        end)
      d.Dfa.delta.(q)
  done;
  !ok
