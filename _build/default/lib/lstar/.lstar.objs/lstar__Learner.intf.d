lib/lstar/learner.mli: Dfa
