lib/lstar/learner.ml: Array Dfa Fun Hashtbl List Option Set
