lib/lstar/agr.mli: Dfa
