lib/lstar/dfa.mli: Format
