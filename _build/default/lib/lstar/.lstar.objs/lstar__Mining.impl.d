lib/lstar/mining.ml: Array Dfa Hashtbl Int List Map Queue Set
