lib/lstar/mining.mli: Dfa
