lib/lstar/agr.ml: Dfa Learner
