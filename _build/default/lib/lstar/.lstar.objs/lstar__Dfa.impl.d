lib/lstar/dfa.ml: Array Format Hashtbl List Map Queue
