(** Deterministic finite automata over integer alphabets.

    The substrate for the L*-based assume-guarantee instance of
    Section 2.4: components, properties and learned assumptions are all
    complete DFAs over a shared alphabet [0 .. alphabet-1]. *)

type word = int list

type t = {
  alphabet : int;
  num_states : int;
  start : int;
  accept : bool array;
  delta : int array array;  (** [delta.(state).(symbol)] *)
}

val make :
  alphabet:int -> start:int -> accept:bool array -> delta:int array array -> t
(** Checks completeness and range. *)

val run : t -> word -> int
val accepts : t -> word -> bool
val complement : t -> t

val product : t -> t -> acc:(bool -> bool -> bool) -> t
(** Synchronous product on the same alphabet; acceptance combined with
    [acc]. Only states reachable from the start pair are kept. *)

val inter : t -> t -> t
val union : t -> t -> t

val find_accepted : t -> word option
(** A shortest accepted word, or [None] if the language is empty. *)

val subset : t -> t -> (unit, word) result
(** [subset a b] checks L(a) ⊆ L(b); [Error w] is a witness in L(a)\L(b). *)

val equal : t -> t -> (unit, word) result
(** Language equality, with a counterexample on failure. *)

val minimize : t -> t
(** Moore's partition refinement on the reachable part. *)

val universal : alphabet:int -> t
val empty : alphabet:int -> t
val of_words : alphabet:int -> word list -> t
(** The finite language consisting of exactly the given words. *)

val pp : Format.formatter -> t -> unit
