(** Mining environment assumptions from traces (the Section 6 direction;
    Li–Dworkin–Seshia, MEMOCODE 2011).

    Instead of learning an assumption with L* (which needs an equivalence
    oracle), mine one from finitely many {e observed} traces of the
    environment: build the prefix-tree acceptor of all trace prefixes,
    then generalize by k-tails state merging — states are merged when
    the sets of continuations of length at most [k] they allow coincide.
    Smaller [k] merges more aggressively (k = 0 collapses everything
    that is live); the mined DFA always accepts every prefix of every
    given trace, and its language is prefix-closed, as environment
    assumptions should be. *)

val prefix_tree : alphabet:int -> Dfa.word list -> Dfa.t
(** Acceptor of exactly the prefixes of the given traces. *)

val mine : alphabet:int -> ?k:int -> Dfa.word list -> Dfa.t
(** Prefix tree generalized by k-tails merging (default [k = 2]),
    minimized. *)

val consistent : Dfa.t -> Dfa.word list -> bool
(** Does the automaton accept every prefix of every trace? *)

val is_prefix_closed : Dfa.t -> bool
(** No accepting state is reachable from a rejecting one. *)
