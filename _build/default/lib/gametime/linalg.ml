module Q = Rational

(* The span is kept in reduced row-echelon form: every row is normalized
   to a leading 1 at its pivot column, and every pivot column is zero in
   all other rows. With that invariant a single reduction pass in any row
   order is a proper normal form (subtracting a row can never reintroduce
   another row's pivot). *)
type span = {
  dim : int;
  mutable rows : Q.t array list;
  mutable pivots : int list; (* pivot column of each row, same order *)
}

let empty_span ~dim = { dim; rows = []; pivots = [] }
let rank s = List.length s.rows

let q_of_ints v = Array.map Q.of_int v

(* reduce v by the RREF rows; returns the residual *)
let reduce s v =
  let v = Array.copy v in
  List.iter2
    (fun row pivot ->
      if not (Q.is_zero v.(pivot)) then begin
        let f = v.(pivot) in
        for j = 0 to s.dim - 1 do
          v.(j) <- Q.sub v.(j) (Q.mul f row.(j))
        done
      end)
    s.rows s.pivots;
  v

let find_pivot v =
  let rec go j =
    if j >= Array.length v then None
    else if Q.is_zero v.(j) then go (j + 1)
    else Some j
  in
  go 0

let add_if_independent s v =
  if Array.length v <> s.dim then invalid_arg "Linalg: dimension mismatch";
  let r = reduce s (q_of_ints v) in
  match find_pivot r with
  | None -> false
  | Some p ->
    (* normalize the new row to a leading 1 ... *)
    let lead = r.(p) in
    for j = 0 to s.dim - 1 do
      r.(j) <- Q.div r.(j) lead
    done;
    (* ... and eliminate its pivot column from every existing row *)
    List.iter
      (fun row ->
        if not (Q.is_zero row.(p)) then begin
          let f = row.(p) in
          for j = 0 to s.dim - 1 do
            row.(j) <- Q.sub row.(j) (Q.mul f r.(j))
          done
        end)
      s.rows;
    s.rows <- r :: s.rows;
    s.pivots <- p :: s.pivots;
    true

let in_span s v = find_pivot (reduce s (q_of_ints v)) = None

let solve basis target =
  match basis with
  | [] -> if Array.for_all (fun x -> x = 0) target then Some [||] else None
  | b0 :: _ ->
    let m = Array.length b0 in
    let k = List.length basis in
    if Array.length target <> m then invalid_arg "Linalg.solve: dimension";
    (* augmented m x (k+1) system: columns are basis vectors, rhs target *)
    let cols = Array.of_list basis in
    let a =
      Array.init m (fun i ->
          Array.init (k + 1) (fun j ->
              if j < k then Q.of_int cols.(j).(i) else Q.of_int target.(i)))
    in
    (* forward elimination with partial (first nonzero) pivoting *)
    let row = ref 0 in
    let pivot_rows = Array.make k (-1) in
    for col = 0 to k - 1 do
      (* find a row at or below !row with nonzero entry in col *)
      let r = ref (-1) in
      for i = !row to m - 1 do
        if !r < 0 && not (Q.is_zero a.(i).(col)) then r := i
      done;
      if !r >= 0 then begin
        let tmp = a.(!row) in
        a.(!row) <- a.(!r);
        a.(!r) <- tmp;
        (* eliminate below *)
        for i = !row + 1 to m - 1 do
          if not (Q.is_zero a.(i).(col)) then begin
            let f = Q.div a.(i).(col) a.(!row).(col) in
            for j = col to k do
              a.(i).(j) <- Q.sub a.(i).(j) (Q.mul f a.(!row).(j))
            done
          end
        done;
        pivot_rows.(col) <- !row;
        incr row
      end
    done;
    (* consistency: rows below !row must have zero rhs *)
    let consistent = ref true in
    for i = !row to m - 1 do
      if not (Q.is_zero a.(i).(k)) then consistent := false
    done;
    if not !consistent then None
    else begin
      (* back substitution; free variables (no pivot) set to zero *)
      let x = Array.make k Q.zero in
      for col = k - 1 downto 0 do
        if pivot_rows.(col) >= 0 then begin
          let i = pivot_rows.(col) in
          let s = ref a.(i).(k) in
          for j = col + 1 to k - 1 do
            s := Q.sub !s (Q.mul a.(i).(j) x.(j))
          done;
          x.(col) <- Q.div !s a.(i).(col)
        end
      done;
      (* verify (guards against free-variable choices breaking equality) *)
      let ok = ref true in
      for i = 0 to m - 1 do
        let s = ref Q.zero in
        List.iteri
          (fun j b -> s := Q.add !s (Q.mul x.(j) (Q.of_int b.(i))))
          basis;
        if not (Q.equal !s (Q.of_int target.(i))) then ok := false
      done;
      if !ok then Some x else None
    end

let dot_float coeffs values =
  let s = ref 0.0 in
  Array.iteri (fun i c -> s := !s +. (Q.to_float c *. values.(i))) coeffs;
  !s
