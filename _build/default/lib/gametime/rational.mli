(** Exact rational arithmetic.

    Used by the basis-path linear algebra: path vectors are 0/1 integer
    vectors and Gaussian elimination on them produces small fractions, so
    machine-int numerators and denominators suffice. Values are kept
    normalized (positive denominator, reduced by gcd). *)

type t = private { num : int; den : int }

val make : int -> int -> t
val of_int : int -> t
val zero : t
val one : t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val sign : t -> int
val to_float : t -> float
val pp : Format.formatter -> t -> unit
