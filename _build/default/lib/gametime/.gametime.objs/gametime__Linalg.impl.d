lib/gametime/linalg.ml: Array List Rational
