lib/gametime/learner.ml: Array Basis Linalg List Option Random
