lib/gametime/analysis.ml: Basis Float Hashtbl Learner List Option Prog Seq Smt Spanner
