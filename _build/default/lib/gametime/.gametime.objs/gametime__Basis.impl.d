lib/gametime/basis.ml: Linalg List Prog Seq
