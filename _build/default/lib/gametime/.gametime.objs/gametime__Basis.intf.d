lib/gametime/basis.mli: Prog Smt
