lib/gametime/spanner.ml: Array Basis Linalg List Option Prog Rational
