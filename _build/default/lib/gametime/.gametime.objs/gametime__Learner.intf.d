lib/gametime/learner.mli: Basis
