lib/gametime/rational.ml: Format Stdlib
