lib/gametime/analysis.mli: Basis Learner Prog
