lib/gametime/rational.mli: Format
