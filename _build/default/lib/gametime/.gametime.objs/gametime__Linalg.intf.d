lib/gametime/linalg.mli: Rational
