lib/gametime/spanner.mli: Basis Prog
