type t = { num : int; den : int }

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let make num den =
  if den = 0 then invalid_arg "Rational.make: zero denominator";
  let s = if den < 0 then -1 else 1 in
  let num = s * num and den = s * den in
  let g = gcd (abs num) den in
  if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }

let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1
let add a b = make ((a.num * b.den) + (b.num * a.den)) (a.den * b.den)
let sub a b = make ((a.num * b.den) - (b.num * a.den)) (a.den * b.den)
let mul a b = make (a.num * b.num) (a.den * b.den)

let div a b =
  if b.num = 0 then invalid_arg "Rational.div: division by zero";
  make (a.num * b.den) (a.den * b.num)

let neg a = { a with num = -a.num }
let is_zero a = a.num = 0
let equal a b = a.num = b.num && a.den = b.den
let compare a b = Stdlib.compare (a.num * b.den) (b.num * a.den)
let sign a = Stdlib.compare a.num 0
let to_float a = float_of_int a.num /. float_of_int a.den

let pp fmt a =
  if a.den = 1 then Format.fprintf fmt "%d" a.num
  else Format.fprintf fmt "%d/%d" a.num a.den
