type model = {
  basis : Basis.basis_path list;
  means : float array;
  samples : int array;
}

let learn ?trials ?(seed = 0x5EED) ~platform basis =
  let k = List.length basis in
  if k = 0 then invalid_arg "Learner.learn: empty basis";
  let trials = Option.value trials ~default:(10 * k) in
  let rng = Random.State.make [| seed |] in
  let basis_arr = Array.of_list basis in
  let sums = Array.make k 0.0 in
  let samples = Array.make k 0 in
  for _ = 1 to trials do
    let i = Random.State.int rng k in
    let t = platform basis_arr.(i).Basis.test in
    sums.(i) <- sums.(i) +. float_of_int t;
    samples.(i) <- samples.(i) + 1
  done;
  (* uniform random choice can starve a path on small trial counts; take
     one deterministic measurement for any path never sampled *)
  Array.iteri
    (fun i n ->
      if n = 0 then begin
        sums.(i) <- float_of_int (platform basis_arr.(i).Basis.test);
        samples.(i) <- 1
      end)
    samples;
  let means = Array.mapi (fun i s -> s /. float_of_int samples.(i)) sums in
  { basis; means; samples }

let predict m vector =
  let vectors = List.map (fun b -> b.Basis.vector) m.basis in
  match Linalg.solve vectors vector with
  | None -> None
  | Some coeffs -> Some (Linalg.dot_float coeffs m.means)
