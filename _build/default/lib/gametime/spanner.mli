(** Barycentric spanner basis selection (Seshia–Rakhlin).

    The GameTime theory asks for basis paths forming a 2-barycentric
    spanner of the feasible path set: every feasible path's coordinates
    in the basis are bounded by 2 in absolute value, which bounds how
    much the perturbation pi is amplified by prediction. The greedy
    basis of {!Basis.extract} is independent but can be badly skewed;
    this module improves it with the Awerbuch–Kleinberg exchange
    procedure: while some candidate raises |det| of the basis (in
    basis coordinates) by more than the factor [c], swap it in. *)

val coordinates :
  Basis.basis_path list -> int array -> float array option
(** Coordinates of a path vector in the given basis ([None] if outside
    its span). *)

val barycentric :
  ?c:float ->
  Basis.basis_path list ->
  candidates:(Prog.Paths.path * (string * int) list) list ->
  Prog.Cfg.t ->
  Basis.basis_path list
(** [barycentric basis ~candidates cfg] returns an equally-sized basis
    drawn from [basis] and [candidates] that is a [c]-approximate
    barycentric spanner of the candidate set (default [c = 2]). *)

val max_coordinate :
  Basis.basis_path list ->
  candidates:(Prog.Paths.path * (string * int) list) list ->
  Prog.Cfg.t ->
  float
(** The largest |coordinate| any candidate has in the basis — the
    spanner quality measure (2-spanner iff <= 2 + eps). *)
