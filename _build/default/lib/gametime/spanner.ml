module Paths = Prog.Paths
module Cfg = Prog.Cfg

let coordinates basis vector =
  let vectors = List.map (fun b -> b.Basis.vector) basis in
  Option.map
    (Array.map Rational.to_float)
    (Linalg.solve vectors vector)

(* determinant by LU with partial pivoting *)
let det m =
  let n = Array.length m in
  let a = Array.map Array.copy m in
  let sign = ref 1.0 in
  let result = ref 1.0 in
  (try
     for col = 0 to n - 1 do
       (* pivot *)
       let piv = ref col in
       for r = col + 1 to n - 1 do
         if abs_float a.(r).(col) > abs_float a.(!piv).(col) then piv := r
       done;
       if abs_float a.(!piv).(col) < 1e-12 then begin
         result := 0.0;
         raise Exit
       end;
       if !piv <> col then begin
         let tmp = a.(col) in
         a.(col) <- a.(!piv);
         a.(!piv) <- tmp;
         sign := -. !sign
       end;
       result := !result *. a.(col).(col);
       for r = col + 1 to n - 1 do
         let f = a.(r).(col) /. a.(col).(col) in
         for cc = col to n - 1 do
           a.(r).(cc) <- a.(r).(cc) -. (f *. a.(col).(cc))
         done
       done
     done
   with Exit -> ());
  !sign *. !result

let barycentric ?(c = 2.0) basis ~candidates (g : Cfg.t) =
  let k = List.length basis in
  if k = 0 then []
  else begin
    (* express everything in the coordinates of the ORIGINAL basis, which
       stay fixed while rows are exchanged *)
    let cand_coords =
      List.filter_map
        (fun (path, test) ->
          Option.map
            (fun co ->
              ( {
                  Basis.path;
                  vector = Paths.vector g path;
                  test;
                },
                co ))
            (coordinates basis (Paths.vector g path)))
        candidates
    in
    let chosen = Array.of_list basis in
    let rows =
      Array.init k (fun i -> Array.init k (fun j -> if i = j then 1.0 else 0.0))
    in
    (* Awerbuch–Kleinberg exchange: swap a candidate into row i whenever it
       multiplies |det| by more than c; terminates because |det| grows
       geometrically and is bounded on the finite candidate set *)
    let rec loop fuel =
      if fuel > 0 then begin
        let changed = ref false in
        for i = 0 to k - 1 do
          List.iter
            (fun (bp, co) ->
              let base = abs_float (det rows) in
              let saved_row = rows.(i) and saved_bp = chosen.(i) in
              rows.(i) <- co;
              chosen.(i) <- bp;
              if abs_float (det rows) > c *. base then changed := true
              else begin
                rows.(i) <- saved_row;
                chosen.(i) <- saved_bp
              end)
            cand_coords
        done;
        if !changed then loop (fuel - 1)
      end
    in
    loop 64;
    Array.to_list chosen
  end

let max_coordinate basis ~candidates (g : Cfg.t) =
  List.fold_left
    (fun acc (path, _) ->
      match coordinates basis (Paths.vector g path) with
      | None -> acc
      | Some co -> Array.fold_left (fun a x -> max a (abs_float x)) acc co)
    0.0 candidates
