(** Exact linear algebra over the rationals.

    Two operations drive the basis-path machinery (Section 3.2 of the
    paper): an incremental independence test to grow a maximal set of
    linearly independent feasible path vectors, and an exact solve to
    express any path vector as a linear combination of the basis. *)

module Q = Rational

type span
(** A growing set of independent vectors, kept in row-echelon form. *)

val empty_span : dim:int -> span
val rank : span -> int

val add_if_independent : span -> int array -> bool
(** [add_if_independent s v] adds [v] to the span if it is not already a
    linear combination of the vectors added so far; returns whether it
    was added. *)

val in_span : span -> int array -> bool

val solve : int array list -> int array -> Q.t array option
(** [solve basis target] finds coefficients [a] with
    [sum_i a.(i) * basis_i = target], or [None] if [target] is not in the
    span of [basis]. *)

val dot_float : Q.t array -> float array -> float
