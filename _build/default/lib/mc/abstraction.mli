(** Localization abstraction (Kurshan), the structure hypothesis of the
    CEGAR instance.

    A subset of latches is kept {e visible}; every hidden latch is
    replaced by a fresh nondeterministic input (one per hidden latch per
    step). The abstraction over-approximates: every concrete behaviour
    is an abstract behaviour, so Safe on the abstraction implies Safe
    concretely. *)

type t = {
  concrete : Ts.t;
  visible : int list;  (** concrete latch indices, sorted *)
  abstract : Ts.t;
  hidden_input : int array;
      (** for each concrete latch: its abstract input index if hidden,
          [-1] if visible *)
}

val localize : Ts.t -> visible:int list -> t

val abstract_index : t -> int -> int
(** Abstract latch index of a visible concrete latch. *)

val referenced_hidden : t -> int list
(** Hidden latches mentioned by the visible next-state functions or the
    bad predicate — refinement candidates, most-referenced first. *)
