(** Small hardware-flavoured transition systems for tests, examples and
    the CEGAR benches. *)

val mod_counter :
  ?junk:int -> bits:int -> modulus:int -> bad_value:int -> unit -> Ts.t
(** An enable-gated counter over [bits] latches counting modulo
    [modulus]; the bad states are [count = bad_value] (unreachable iff
    [bad_value >= modulus]). [junk] appends that many latches forming an
    input-driven shift register with no influence on the property —
    localization fodder. *)

val shift_register : len:int -> Ts.t
(** Input bit shifts through [len] latches; bad iff the last latch rises
    while the first never saw a 1 — unreachable, but proving it needs the
    whole chain visible (worst case for localization). *)

val request_grant : Ts.t
(** A 2-latch arbiter that must not grant without a pending request;
    contains a deliberate bug reachable in 2 steps. *)
