type t = {
  concrete : Ts.t;
  visible : int list;
  abstract : Ts.t;
  hidden_input : int array;
}

let localize (ts : Ts.t) ~visible =
  let visible = List.sort_uniq compare visible in
  List.iter
    (fun i ->
      if i < 0 || i >= ts.Ts.num_latches then
        invalid_arg "Abstraction.localize: latch out of range")
    visible;
  let n = ts.Ts.num_latches in
  let latch_map = Array.make n (-1) in
  List.iteri (fun k i -> latch_map.(i) <- k) visible;
  let hidden_input = Array.make n (-1) in
  let next_input = ref ts.Ts.num_inputs in
  for i = 0 to n - 1 do
    if latch_map.(i) < 0 then begin
      hidden_input.(i) <- !next_input;
      incr next_input
    end
  done;
  let rec rewrite = function
    | (Ts.T | Ts.F) as e -> e
    | Ts.V i -> if latch_map.(i) >= 0 then Ts.V latch_map.(i) else Ts.In hidden_input.(i)
    | Ts.In i -> Ts.In i
    | Ts.Not a -> Ts.Not (rewrite a)
    | Ts.And (a, b) -> Ts.And (rewrite a, rewrite b)
    | Ts.Or (a, b) -> Ts.Or (rewrite a, rewrite b)
    | Ts.Xor (a, b) -> Ts.Xor (rewrite a, rewrite b)
  in
  (* the bad predicate stays a state predicate: existentially eliminate
     hidden latches instead of turning them into inputs (an abstract
     state is bad if SOME hidden valuation makes it bad — still an
     over-approximation) *)
  let rec subst_latch v value = function
    | (Ts.T | Ts.F | Ts.In _) as e -> e
    | Ts.V i -> if i = v then value else Ts.V i
    | Ts.Not a -> Ts.Not (subst_latch v value a)
    | Ts.And (a, b) -> Ts.And (subst_latch v value a, subst_latch v value b)
    | Ts.Or (a, b) -> Ts.Or (subst_latch v value a, subst_latch v value b)
    | Ts.Xor (a, b) -> Ts.Xor (subst_latch v value a, subst_latch v value b)
  in
  let bad_exists =
    let latches = Array.make n false in
    let inputs = Array.make (max ts.Ts.num_inputs 1) false in
    Ts.support ts.Ts.bad ~latches ~inputs;
    let hidden_in_bad = ref [] in
    Array.iteri
      (fun i b -> if b && latch_map.(i) < 0 then hidden_in_bad := i :: !hidden_in_bad)
      latches;
    List.fold_left
      (fun e v -> Ts.Or (subst_latch v Ts.T e, subst_latch v Ts.F e))
      ts.Ts.bad !hidden_in_bad
  in
  let abstract =
    Ts.make
      ~name:(ts.Ts.name ^ "#abs")
      ~num_latches:(List.length visible) ~num_inputs:!next_input
      ~init:(Array.of_list (List.map (fun i -> ts.Ts.init.(i)) visible))
      ~next:(Array.of_list (List.map (fun i -> rewrite ts.Ts.next.(i)) visible))
      ~bad:(rewrite bad_exists)
  in
  { concrete = ts; visible; abstract; hidden_input }

let abstract_index a i =
  match List.find_index (fun j -> j = i) a.visible with
  | Some k -> k
  | None -> invalid_arg "Abstraction.abstract_index: latch is hidden"

let referenced_hidden a =
  let ts = a.concrete in
  let counts = Array.make ts.Ts.num_latches 0 in
  let tally e =
    let latches = Array.make ts.Ts.num_latches false in
    let inputs = Array.make (max ts.Ts.num_inputs 1) false in
    Ts.support e ~latches ~inputs;
    Array.iteri (fun i b -> if b && a.hidden_input.(i) >= 0 then counts.(i) <- counts.(i) + 1) latches
  in
  List.iter (fun i -> tally ts.Ts.next.(i)) a.visible;
  tally ts.Ts.bad;
  let refs = ref [] in
  Array.iteri (fun i c -> if c > 0 then refs := (c, i) :: !refs) counts;
  List.sort (fun (c1, _) (c2, _) -> compare c2 c1) !refs |> List.map snd
