(** Finite-state boolean transition systems.

    A system has state variables (latches) and free inputs; each latch
    has a next-state function given as a boolean expression over the
    current latches and inputs, plus a [bad]-state predicate (the negated
    safety property). This is the system class the CEGAR instance of
    Section 2.4 model-checks. *)

type expr =
  | T
  | F
  | V of int  (** current value of latch [i] *)
  | In of int  (** input [i] *)
  | Not of expr
  | And of expr * expr
  | Or of expr * expr
  | Xor of expr * expr

type t = {
  name : string;
  num_latches : int;
  num_inputs : int;
  init : bool array;  (** single initial state *)
  next : expr array;  (** per latch *)
  bad : expr;  (** a pure state predicate: must not mention inputs *)
}

val make :
  name:string ->
  num_latches:int ->
  num_inputs:int ->
  init:bool array ->
  next:expr array ->
  bad:expr ->
  t
(** Checks arity and that variable references are in range; rejects a
    [bad] predicate that mentions inputs. *)

val eval : expr -> state:bool array -> input:bool array -> bool
val step : t -> state:bool array -> input:bool array -> bool array
val is_bad : t -> bool array -> bool

val support : expr -> latches:bool array -> inputs:bool array -> unit
(** Mark the latches/inputs the expression mentions. *)

val latch_support : t -> int -> int list
(** Latches appearing in latch [i]'s next-state function. *)

val pp_expr : Format.formatter -> expr -> unit
