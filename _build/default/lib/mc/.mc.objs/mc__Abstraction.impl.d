lib/mc/abstraction.ml: Array List Ts
