lib/mc/reach.mli: Ts
