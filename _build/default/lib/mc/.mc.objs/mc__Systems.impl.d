lib/mc/systems.ml: Array List Printf Ts
