lib/mc/reach.ml: Array Hashtbl List Queue Ts
