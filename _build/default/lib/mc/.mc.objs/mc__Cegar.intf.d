lib/mc/cegar.mli: Ts
