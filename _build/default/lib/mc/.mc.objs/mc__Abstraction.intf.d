lib/mc/abstraction.mli: Ts
