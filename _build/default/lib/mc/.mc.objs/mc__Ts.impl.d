lib/mc/ts.ml: Array Format
