lib/mc/bmc.mli: Smt Ts
