lib/mc/systems.mli: Ts
