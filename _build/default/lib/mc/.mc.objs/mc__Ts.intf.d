lib/mc/ts.mli: Format
