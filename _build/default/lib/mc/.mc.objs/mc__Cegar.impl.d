lib/mc/cegar.ml: Abstraction Array Bmc Fun List Option Random Reach Sciduction Smt Ts
