lib/mc/bmc.ml: Array List Smt Ts
