type expr =
  | T
  | F
  | V of int
  | In of int
  | Not of expr
  | And of expr * expr
  | Or of expr * expr
  | Xor of expr * expr

type t = {
  name : string;
  num_latches : int;
  num_inputs : int;
  init : bool array;
  next : expr array;
  bad : expr;
}

let rec check_expr ~num_latches ~num_inputs = function
  | T | F -> ()
  | V i ->
    if i < 0 || i >= num_latches then invalid_arg "Ts: latch out of range"
  | In i ->
    if i < 0 || i >= num_inputs then invalid_arg "Ts: input out of range"
  | Not a -> check_expr ~num_latches ~num_inputs a
  | And (a, b) | Or (a, b) | Xor (a, b) ->
    check_expr ~num_latches ~num_inputs a;
    check_expr ~num_latches ~num_inputs b

let make ~name ~num_latches ~num_inputs ~init ~next ~bad =
  if Array.length init <> num_latches then invalid_arg "Ts.make: init arity";
  if Array.length next <> num_latches then invalid_arg "Ts.make: next arity";
  Array.iter (check_expr ~num_latches ~num_inputs) next;
  (* the bad predicate is a pure state predicate *)
  check_expr ~num_latches ~num_inputs:0 bad;
  { name; num_latches; num_inputs; init; next; bad }

let rec eval e ~state ~input =
  match e with
  | T -> true
  | F -> false
  | V i -> state.(i)
  | In i -> input.(i)
  | Not a -> not (eval a ~state ~input)
  | And (a, b) -> eval a ~state ~input && eval b ~state ~input
  | Or (a, b) -> eval a ~state ~input || eval b ~state ~input
  | Xor (a, b) -> eval a ~state ~input <> eval b ~state ~input

let step t ~state ~input = Array.map (fun e -> eval e ~state ~input) t.next

let is_bad t state = eval t.bad ~state ~input:[||]

let rec support e ~latches ~inputs =
  match e with
  | T | F -> ()
  | V i -> latches.(i) <- true
  | In i -> inputs.(i) <- true
  | Not a -> support a ~latches ~inputs
  | And (a, b) | Or (a, b) | Xor (a, b) ->
    support a ~latches ~inputs;
    support b ~latches ~inputs

let latch_support t i =
  let latches = Array.make t.num_latches false in
  let inputs = Array.make (max t.num_inputs 1) false in
  support t.next.(i) ~latches ~inputs;
  let acc = ref [] in
  for j = t.num_latches - 1 downto 0 do
    if latches.(j) then acc := j :: !acc
  done;
  !acc

let rec pp_expr fmt = function
  | T -> Format.pp_print_string fmt "1"
  | F -> Format.pp_print_string fmt "0"
  | V i -> Format.fprintf fmt "v%d" i
  | In i -> Format.fprintf fmt "i%d" i
  | Not a -> Format.fprintf fmt "!%a" pp_expr a
  | And (a, b) -> Format.fprintf fmt "(%a & %a)" pp_expr a pp_expr b
  | Or (a, b) -> Format.fprintf fmt "(%a | %a)" pp_expr a pp_expr b
  | Xor (a, b) -> Format.fprintf fmt "(%a ^ %a)" pp_expr a pp_expr b
