open Ts

let conj = function [] -> T | e :: es -> List.fold_left (fun a b -> And (a, b)) e es

let equals_const ~bits ~offset value =
  conj
    (List.init bits (fun i ->
         if value land (1 lsl i) <> 0 then V (offset + i) else Not (V (offset + i))))

let mod_counter ?(junk = 0) ~bits ~modulus ~bad_value () =
  if modulus < 1 || modulus > 1 lsl bits then invalid_arg "Systems.mod_counter";
  let at_max = equals_const ~bits ~offset:0 (modulus - 1) in
  (* increment with carry chain; input 0 is the enable *)
  let carry = Array.make (bits + 1) (In 0) in
  for i = 0 to bits - 1 do
    carry.(i + 1) <- And (carry.(i), V i)
  done;
  let count_next i =
    let inc = Xor (V i, carry.(i)) in
    (* wrap to zero when enabled at the top of the range *)
    And (inc, Not (And (In 0, at_max)))
  in
  let junk_next k = if k = 0 then In 1 else V (bits + k - 1) in
  Ts.make
    ~name:(Printf.sprintf "mod_counter%d/%d+%dj" bits modulus junk)
    ~num_latches:(bits + junk)
    ~num_inputs:(if junk > 0 then 2 else 1)
    ~init:(Array.make (bits + junk) false)
    ~next:
      (Array.init (bits + junk) (fun i ->
           if i < bits then count_next i else junk_next (i - bits)))
    ~bad:(equals_const ~bits ~offset:0 bad_value)

let shift_register ~len =
  (* latch 0 takes the input; latch len records "ever saw a 1" at entry *)
  let next =
    Array.init (len + 1) (fun i ->
        if i = 0 then In 0
        else if i < len then V (i - 1)
        else Or (V len, In 0))
  in
  Ts.make
    ~name:(Printf.sprintf "shift%d" len)
    ~num_latches:(len + 1) ~num_inputs:1
    ~init:(Array.make (len + 1) false)
    ~next
    ~bad:(And (V (len - 1), Not (V len)))

let request_grant =
  (* latch 0: pending request; latch 1: grant. The bug: the grant line
     holds for one cycle after the request is dropped, so "grant implies
     pending" fails two steps in (request, then idle). *)
  Ts.make ~name:"request_grant" ~num_latches:2 ~num_inputs:1
    ~init:[| false; false |]
    ~next:[| In 0; Or (In 0, V 0) |]
    ~bad:(And (V 1, Not (V 0)))
