type answer =
  | Safe of { states_explored : int }
  | Cex of bool array list

let pack state =
  let v = ref 0 in
  Array.iteri (fun i b -> if b then v := !v lor (1 lsl i)) state;
  !v

let unpack n code = Array.init n (fun i -> code land (1 lsl i) <> 0)

let input_of_code n code = Array.init n (fun i -> code land (1 lsl i) <> 0)

let check ?(max_states = 2_000_000) (t : Ts.t) =
  if t.Ts.num_latches > 22 then
    invalid_arg "Reach.check: too many latches for explicit search";
  if t.Ts.num_inputs > 16 then
    invalid_arg "Reach.check: too many inputs for explicit search";
  let ninputs = 1 lsl t.Ts.num_inputs in
  let parent = Hashtbl.create 1024 in
  (* state code -> (predecessor code, input code); the initial state maps
     to itself *)
  let init_code = pack t.Ts.init in
  Hashtbl.replace parent init_code (init_code, 0);
  let queue = Queue.create () in
  Queue.add init_code queue;
  let trace_to code =
    let rec go code acc =
      let pred, inp = Hashtbl.find parent code in
      if pred = code then acc
      else go pred (input_of_code t.Ts.num_inputs inp :: acc)
    in
    go code []
  in
  let explored = ref 0 in
  let result = ref None in
  while !result = None && not (Queue.is_empty queue) do
    let code = Queue.pop queue in
    incr explored;
    if !explored > max_states then
      invalid_arg "Reach.check: state budget exceeded";
    let state = unpack t.Ts.num_latches code in
    if Ts.is_bad t state then result := Some (Cex (trace_to code))
    else
      for inp = 0 to ninputs - 1 do
        let input = input_of_code t.Ts.num_inputs inp in
        let succ = pack (Ts.step t ~state ~input) in
        if not (Hashtbl.mem parent succ) then begin
          Hashtbl.replace parent succ (code, inp);
          Queue.add succ queue
        end
      done
  done;
  match !result with
  | Some r -> r
  | None -> Safe { states_explored = !explored }

let replay (t : Ts.t) inputs =
  let state = ref (Array.copy t.Ts.init) in
  Ts.is_bad t !state
  || List.exists
       (fun input ->
         state := Ts.step t ~state:!state ~input;
         Ts.is_bad t !state)
       inputs
