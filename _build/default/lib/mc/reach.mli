(** Explicit-state BFS reachability — the finite-state model checker that
    CEGAR invokes on abstractions.

    States are bit-packed into an [int], so systems are limited to 22
    latches and 16 inputs; abstractions are expected to be small (that is
    the point of localization). *)

type answer =
  | Safe of { states_explored : int }
  | Cex of bool array list
      (** input valuations driving the system from the initial state into
          a bad state; the empty list means the initial state is bad *)

val check : ?max_states:int -> Ts.t -> answer
(** Raises [Invalid_argument] beyond the size limits or when
    [max_states] (default 2_000_000) is exceeded. *)

val replay : Ts.t -> bool array list -> bool
(** Does the input sequence actually reach a bad state? Used to validate
    counterexamples. *)
