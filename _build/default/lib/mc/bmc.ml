module Tseitin = Smt.Tseitin
module Sat = Smt.Sat
module Lit = Smt.Lit

let compile ctx ~state ~input e =
  let rec go = function
    | Ts.T -> Tseitin.true_ ctx
    | Ts.F -> Tseitin.false_ ctx
    | Ts.V i -> state.(i)
    | Ts.In i -> input.(i)
    | Ts.Not a -> Tseitin.not_ (go a)
    | Ts.And (a, b) -> Tseitin.and2 ctx (go a) (go b)
    | Ts.Or (a, b) -> Tseitin.or2 ctx (go a) (go b)
    | Ts.Xor (a, b) -> Tseitin.xor2 ctx (go a) (go b)
  in
  go e

let check (ts : Ts.t) ~depth =
  let ctx = Tseitin.create () in
  let state0 =
    Array.map (fun b -> Tseitin.of_bool ctx b) ts.Ts.init
  in
  (* bad at step 0..depth; inputs.(t) drives step t -> t+1 *)
  let inputs = ref [] in
  let bads = ref [ compile ctx ~state:state0 ~input:[||] ts.Ts.bad ] in
  let state = ref state0 in
  for _t = 1 to depth do
    let input = Array.init ts.Ts.num_inputs (fun _ -> Tseitin.fresh ctx) in
    inputs := input :: !inputs;
    let next =
      Array.map (fun e -> compile ctx ~state:!state ~input e) ts.Ts.next
    in
    state := next;
    bads := compile ctx ~state:next ~input:[||] ts.Ts.bad :: !bads
  done;
  let inputs = Array.of_list (List.rev !inputs) in
  let bads = List.rev !bads in
  Tseitin.assert_lit ctx (Tseitin.or_list ctx bads);
  match Sat.solve_with_assumptions (Tseitin.solver ctx) [] with
  | Sat.Unsat -> None
  | Sat.Sat ->
    (* extract inputs and truncate the trace at the first bad state *)
    let value l = Tseitin.lit_of_model ctx l in
    let all_inputs =
      Array.to_list (Array.map (fun inp -> Array.map value inp) inputs)
    in
    let rec truncate state steps_taken inputs_left =
      if Ts.is_bad ts state then Some (List.rev steps_taken)
      else
        match inputs_left with
        | [] -> None (* model exists, so this cannot happen *)
        | input :: rest ->
          truncate (Ts.step ts ~state ~input) (input :: steps_taken) rest
    in
    truncate ts.Ts.init [] all_inputs
