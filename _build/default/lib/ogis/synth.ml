module Bv = Smt.Bv
module Solver = Smt.Solver

type oracle = int list -> int list

type stats = {
  iterations : int;
  oracle_queries : int;
  examples : (int list * int list) list;
}

type outcome =
  | Synthesized of Straightline.t * stats
  | Unrealizable of stats
  | Out_of_budget of stats

let synthesize ?(max_iterations = 64) ?initial_inputs (spec : Encode.spec)
    oracle =
  let queries = ref 0 in
  let ask ins =
    incr queries;
    (ins, oracle ins)
  in
  let initial =
    (* deterministic initial probes: a richer starting example set prunes
       most wirings immediately and makes the final uniqueness proof much
       cheaper (Jha et al. seed with random examples for the same reason) *)
    let w = spec.Encode.width in
    let mask = (1 lsl w) - 1 in
    let patterns =
      [
        (fun _ -> 0);
        (fun _ -> 1);
        (fun j -> (0x5555 + j) land mask);
        (fun j -> (0xCC3 * (j + 7)) land mask);
      ]
    in
    Option.value initial_inputs
      ~default:
        (List.map
           (fun f -> List.init spec.Encode.ninputs f)
           patterns)
  in
  let rec loop iterations examples =
    let stats () =
      { iterations; oracle_queries = !queries; examples = List.rev examples }
    in
    if iterations >= max_iterations then Out_of_budget (stats ())
    else
      match Encode.synthesize_candidate spec ~examples with
      | None -> Unrealizable (stats ())
      | Some candidate -> (
        match Encode.distinguishing_input spec ~examples candidate with
        | None -> Synthesized (candidate, stats ())
        | Some input -> loop (iterations + 1) (ask input :: examples))
  in
  loop 0 (List.map ask initial)

let verify_against (spec : Encode.spec) prog ~spec_fn =
  let w = spec.Encode.width in
  let inputs =
    List.init spec.Encode.ninputs (fun j ->
        Bv.var ~width:w (Printf.sprintf "cx%d" j))
  in
  let got = Straightline.to_terms prog inputs in
  let want = spec_fn inputs in
  if List.length got <> List.length want then
    invalid_arg "Synth.verify_against: output arity mismatch";
  let differs = Bv.disj (List.map2 Bv.neq got want) in
  match Solver.check_formulas [ differs ] with
  | Error () -> Ok ()
  | Ok env ->
    Error (List.init spec.Encode.ninputs (fun j ->
        env.Bv.bv (Printf.sprintf "cx%d" j)))
