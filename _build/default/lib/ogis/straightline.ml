module Bv = Smt.Bv

type line = { comp : Component.t; args : int list }

type t = {
  width : int;
  ninputs : int;
  lines : line list;
  outputs : int list;
}

let make ~width ~ninputs lines ~outputs =
  List.iteri
    (fun i { comp; args } ->
      if List.length args <> comp.Component.arity then
        invalid_arg "Straightline.make: arity mismatch";
      List.iter
        (fun a ->
          if a < 0 || a >= ninputs + i then
            invalid_arg "Straightline.make: forward or invalid reference")
        args)
    lines;
  let nloc = ninputs + List.length lines in
  List.iter
    (fun o ->
      if o < 0 || o >= nloc then invalid_arg "Straightline.make: bad output")
    outputs;
  { width; ninputs; lines; outputs }

let num_locations p = p.ninputs + List.length p.lines

(* shared fold over locations: [inject] lifts inputs into the value
   domain, components are applied symbolically *)
let values_of p (inputs : Bv.term list) =
  if List.length inputs <> p.ninputs then
    invalid_arg "Straightline: wrong number of inputs";
  let values = Array.make (num_locations p) (Bv.const ~width:p.width 0) in
  List.iteri (fun i t -> values.(i) <- t) inputs;
  List.iteri
    (fun i { comp; args } ->
      let arg_terms = List.map (fun a -> values.(a)) args in
      values.(p.ninputs + i) <- Component.apply comp arg_terms)
    p.lines;
  values

let to_terms p inputs =
  let values = values_of p inputs in
  List.map (fun o -> values.(o)) p.outputs

let eval p inputs =
  let terms =
    to_terms p (List.map (fun v -> Bv.const ~width:p.width v) inputs)
  in
  let env = Bv.env_of_alist [] in
  List.map (Bv.eval_term env) terms

let loc_name p loc =
  if loc < p.ninputs then Printf.sprintf "x%d" loc
  else Printf.sprintf "t%d" (loc - p.ninputs)

let pp fmt p =
  Format.fprintf fmt "@[<v>";
  List.iteri
    (fun i { comp; args } ->
      let rendered = comp.Component.print (List.map (loc_name p) args) in
      Format.fprintf fmt "t%d := %s;@," i rendered)
    p.lines;
  Format.fprintf fmt "return (%s)@]"
    (String.concat ", " (List.map (loc_name p) p.outputs))
