(** Loop-free straight-line programs over a component library.

    Locations follow the encoding of Jha et al. (ICSE 2010): location
    [0..ninputs-1] denotes the program inputs; location [ninputs + i] the
    output of the [i]-th line. Each line applies a component to earlier
    locations, so programs are well-formed by construction. *)

type line = { comp : Component.t; args : int list }

type t = {
  width : int;
  ninputs : int;
  lines : line list;
  outputs : int list;  (** locations returned, in order *)
}

val make :
  width:int -> ninputs:int -> line list -> outputs:int list -> t
(** Checks location validity and acyclicity. *)

val num_locations : t -> int

val eval : t -> int list -> int list
(** Run the program on concrete inputs. *)

val to_terms : t -> Smt.Bv.term list -> Smt.Bv.term list
(** Symbolic outputs over the given symbolic inputs. *)

val pp : Format.formatter -> t -> unit
(** Renders the program with inputs named [x0, x1, ...] and temporaries
    [t0, t1, ...]. *)
