module Bv = Smt.Bv

type t = {
  name : string;
  arity : int;
  semantics : Bv.term list -> Bv.term;
  print : string list -> string;
}

let apply c args =
  if List.length args <> c.arity then
    invalid_arg
      (Printf.sprintf "Component.apply: %s expects %d arguments" c.name c.arity);
  c.semantics args

let binop name op sym =
  {
    name;
    arity = 2;
    semantics =
      (function [ a; b ] -> op a b | _ -> invalid_arg name);
    print =
      (function [ a; b ] -> Printf.sprintf "%s %s %s" a sym b | _ -> assert false);
  }

let unop name op render =
  {
    name;
    arity = 1;
    semantics = (function [ a ] -> op a | _ -> invalid_arg name);
    print = (function [ a ] -> render a | _ -> assert false);
  }

let add = binop "add" Bv.badd "+"
let sub = binop "sub" Bv.bsub "-"
let and_ = binop "and" Bv.band "&"
let or_ = binop "or" Bv.bor "|"
let xor = binop "xor" Bv.bxor "^"
let mul = binop "mul" Bv.bmul "*"
let not_ = unop "not" Bv.bnot (Printf.sprintf "~%s")
let neg = unop "neg" Bv.bneg (Printf.sprintf "-%s")

let inc =
  unop "inc"
    (fun a -> Bv.badd a (Bv.const ~width:(Bv.width a) 1))
    (Printf.sprintf "%s + 1")

let dec =
  unop "dec"
    (fun a -> Bv.bsub a (Bv.const ~width:(Bv.width a) 1))
    (Printf.sprintf "%s - 1")

let shl_const k =
  unop
    (Printf.sprintf "shl%d" k)
    (fun a -> Bv.bshl a (Bv.const ~width:(Bv.width a) k))
    (fun a -> Printf.sprintf "%s << %d" a k)

let lshr_const k =
  unop
    (Printf.sprintf "lshr%d" k)
    (fun a -> Bv.blshr a (Bv.const ~width:(Bv.width a) k))
    (fun a -> Printf.sprintf "%s >> %d" a k)

let const ~width value =
  {
    name = Printf.sprintf "const%d" value;
    arity = 0;
    semantics = (fun _ -> Bv.const ~width value);
    print = (fun _ -> string_of_int value);
  }

let ule01 =
  {
    name = "ule01";
    arity = 2;
    semantics =
      (function
      | [ a; b ] ->
        let w = Bv.width a in
        Bv.ite (Bv.ule a b) (Bv.const ~width:w 1) (Bv.const ~width:w 0)
      | _ -> invalid_arg "ule01");
    print =
      (function
      | [ a; b ] -> Printf.sprintf "%s <= %s ? 1 : 0" a b
      | _ -> assert false);
  }

let fig8_p1 = [ xor; xor; xor ]
let fig8_p2 = [ shl_const 2; shl_const 3; add; add ]
let hackers_delight_basic = [ and_; or_; xor; not_; neg; add; sub; inc; dec ]
