lib/ogis/encode.mli: Component Straightline
