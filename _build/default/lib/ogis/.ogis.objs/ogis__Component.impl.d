lib/ogis/component.ml: List Printf Smt
