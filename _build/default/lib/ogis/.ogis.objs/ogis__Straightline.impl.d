lib/ogis/straightline.ml: Array Component Format List Printf Smt String
