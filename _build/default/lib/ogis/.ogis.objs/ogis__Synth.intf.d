lib/ogis/synth.mli: Encode Smt Straightline
