lib/ogis/hd_suite.mli: Component Smt Straightline Synth
