lib/ogis/deobfuscate.mli: Component Prog Stdlib Straightline Synth
