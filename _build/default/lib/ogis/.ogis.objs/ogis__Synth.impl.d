lib/ogis/synth.ml: Encode List Option Printf Smt Straightline
