lib/ogis/encode.ml: Array Component Hashtbl List Printf Smt Straightline
