lib/ogis/deobfuscate.ml: Encode List Prog Straightline Synth Unix
