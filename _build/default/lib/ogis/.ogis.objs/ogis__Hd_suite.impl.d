lib/ogis/hd_suite.ml: Component Encode List Smt Straightline Synth Unix
