lib/ogis/straightline.mli: Component Format Smt
