lib/ogis/component.mli: Smt
