(** Component libraries for oracle-guided synthesis (Section 4).

    A component is a base instruction the synthesized loop-free program is
    composed from: a bit-vector circuit with [arity] inputs and one
    output. Semantics are given symbolically (as a {!Smt.Bv} term
    builder), which serves both concrete evaluation and the SMT
    encoding. *)

type t = {
  name : string;
  arity : int;
  semantics : Smt.Bv.term list -> Smt.Bv.term;
  print : string list -> string;
      (** render an application, e.g. [fun [a; b] -> a ^ " + " ^ b] *)
}

val apply : t -> Smt.Bv.term list -> Smt.Bv.term
(** [semantics] with an arity check. *)

(** {2 Stock components} (width-polymorphic) *)

val add : t
val sub : t
val and_ : t
val or_ : t
val xor : t
val not_ : t
val neg : t
val inc : t
val dec : t
val mul : t
val shl_const : int -> t
val lshr_const : int -> t
val const : width:int -> int -> t
val ule01 : t
(** 1 if first operand <= second (unsigned), else 0. *)

(** {2 Libraries used by the experiments} *)

val fig8_p1 : t list
(** Three XORs: the library for deobfuscating [interchangeObs]. *)

val fig8_p2 : t list
(** [shl 2], [shl 3], and two adders: the library for [multiply45Obs]. *)

val hackers_delight_basic : t list
(** A small Hacker's-Delight-style library: and, or, xor, not, neg, add,
    sub, inc, dec. *)
