(** Simulation-based reachability for multimodal systems.

    [in_mode] is the deductive query of Section 5.2: "if we enter mode m
    in state s and follow its dynamics, does the trajectory visit only
    safe states until some exit guard becomes true?" — answered by
    numerical simulation. [run_policy] executes the closed-loop hybrid
    system along a fixed switching plan (used to produce Fig. 10). *)

type stop =
  | Exit of string * float array * float
      (** exit guard label, state and time at exit *)
  | Unsafe of float array * float
  | Timeout of float array

val in_mode :
  Mds.t ->
  mode:int ->
  exits:(string * (float array -> bool)) list ->
  ?min_dwell:float ->
  dt:float ->
  max_time:float ->
  float array ->
  stop
(** Integrate the mode's flow from the given state. Safety is checked at
    every sample (including the entry state); exit guards are only
    consulted once [min_dwell] (default 0) time has elapsed. *)

type sample = {
  time : float;
  mode : int;
  state : float array;
}

type switch = {
  label : string;
  at : float array;  (** state at the switch *)
  switch_time : float;
}

type run = {
  samples : sample list;
  switches : switch list;  (** one per executed plan transition, in order *)
  outcome : [ `Completed | `Unsafe | `Timeout ];
}

val run_policy :
  Mds.t ->
  guard:(string -> float array -> bool) ->
  plan:string list ->
  ?min_dwell:float ->
  ?sample_every:float ->
  dt:float ->
  max_time:float ->
  float array ->
  run
(** Follow [plan] (a list of transition labels): in each mode, integrate
    until the next planned transition's guard holds (after the dwell),
    then switch. Samples are recorded every [sample_every] time units
    (default [dt]); switches are recorded exactly, even when they take
    zero time. [`Completed] means the whole plan was executed. *)
