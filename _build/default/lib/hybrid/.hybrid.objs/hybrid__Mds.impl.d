lib/hybrid/mds.ml: Array List Ode Printf
