lib/hybrid/thermostat.ml: Array Mds
