lib/hybrid/ode.mli:
