lib/hybrid/ode.ml: Array
