lib/hybrid/thermostat.mli: Mds
