lib/hybrid/simulate.mli: Mds
