lib/hybrid/transmission.mli: Mds
