lib/hybrid/mds.mli: Ode
