lib/hybrid/transmission.ml: Array Mds
