lib/hybrid/simulate.ml: Array List Mds Ode Option Printf
