(** Multimodal dynamical systems (Section 5.1).

    A plant that can operate in a finite set of modes, each with its own
    continuous dynamics. The switching logic — guards on the transitions
    between modes — is what {!Switchsynth} synthesizes; here we only fix
    the modes, the transition topology, and the safety predicate. *)

type mode = {
  name : string;
  flow : Ode.flow;
}

type transition = {
  label : string;  (** guard name, e.g. "g12U" *)
  src : int;
  dst : int;
}

type t = {
  dim : int;
  var_names : string array;
  modes : mode array;
  transitions : transition array;
  safe : int -> float array -> bool;
      (** the safety property, per mode (mode index, state) *)
}

val mode_index : t -> string -> int
val transition_index : t -> string -> int
val outgoing : t -> int -> transition list
val incoming : t -> int -> transition list
