type mode = {
  name : string;
  flow : Ode.flow;
}

type transition = {
  label : string;
  src : int;
  dst : int;
}

type t = {
  dim : int;
  var_names : string array;
  modes : mode array;
  transitions : transition array;
  safe : int -> float array -> bool;
}

let mode_index t name =
  let rec go i =
    if i >= Array.length t.modes then
      invalid_arg (Printf.sprintf "Mds.mode_index: unknown mode %s" name)
    else if t.modes.(i).name = name then i
    else go (i + 1)
  in
  go 0

let transition_index t label =
  let rec go i =
    if i >= Array.length t.transitions then
      invalid_arg (Printf.sprintf "Mds.transition_index: unknown guard %s" label)
    else if t.transitions.(i).label = label then i
    else go (i + 1)
  in
  go 0

let outgoing t m =
  Array.to_list t.transitions |> List.filter (fun tr -> tr.src = m)

let incoming t m =
  Array.to_list t.transitions |> List.filter (fun tr -> tr.dst = m)
