type flow = float array -> float array

let axpy n y a x =
  (* y + a*x, fresh array *)
  Array.init n (fun i -> y.(i) +. (a *. x.(i)))

let rk4_step f ~dt y =
  let n = Array.length y in
  let k1 = f y in
  let k2 = f (axpy n y (dt /. 2.) k1) in
  let k3 = f (axpy n y (dt /. 2.) k2) in
  let k4 = f (axpy n y dt k3) in
  Array.init n (fun i ->
      y.(i)
      +. (dt /. 6. *. (k1.(i) +. (2. *. k2.(i)) +. (2. *. k3.(i)) +. k4.(i))))

let integrate f ~dt ~max_time y0 ~stop =
  (* time is reconstructed from the step index rather than accumulated,
     so long integrations do not drift by rounding *)
  let rec go i y =
    let t = float_of_int i *. dt in
    if stop ~t y then (t, y)
    else if t >= max_time then (t, y)
    else go (i + 1) (rk4_step f ~dt y)
  in
  go 0 y0
