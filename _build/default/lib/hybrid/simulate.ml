type stop =
  | Exit of string * float array * float
  | Unsafe of float array * float
  | Timeout of float array

let in_mode (sys : Mds.t) ~mode ~exits ?(min_dwell = 0.0) ~dt ~max_time state =
  let flow = sys.Mds.modes.(mode).Mds.flow in
  let result = ref (Timeout state) in
  (* Ordering: the entry state itself must be safe (a switching state is
     a state, so it must satisfy the property). At later samples, exits
     are consulted BEFORE safety — an exit guard crossed within the step
     means the controller switches at the crossing point, before the
     trajectory can leave the safe set later in that same step. *)
  let stop ~t y =
    if t = 0.0 && not (sys.Mds.safe mode y) then begin
      result := Unsafe (y, t);
      true
    end
    else begin
      let exit_hit =
        if t +. 1e-12 >= min_dwell then
          List.find_opt (fun (_, g) -> g y) exits
        else None
      in
      match exit_hit with
      | Some (label, _) ->
        result := Exit (label, y, t);
        true
      | None ->
        if not (sys.Mds.safe mode y) then begin
          result := Unsafe (y, t);
          true
        end
        else false
    end
  in
  let _, y = Ode.integrate flow ~dt ~max_time state ~stop in
  (match !result with
  | Timeout _ -> result := Timeout y
  | _ -> ());
  !result

type sample = {
  time : float;
  mode : int;
  state : float array;
}

type switch = {
  label : string;
  at : float array;
  switch_time : float;
}

type run = {
  samples : sample list;
  switches : switch list;
  outcome : [ `Completed | `Unsafe | `Timeout ];
}

let run_policy (sys : Mds.t) ~guard ~plan ?(min_dwell = 0.0) ?sample_every ~dt
    ~max_time state =
  let sample_every = Option.value sample_every ~default:dt in
  let samples = ref [] in
  let switches = ref [] in
  let last_sampled = ref neg_infinity in
  let record t mode y =
    if t -. !last_sampled +. 1e-12 >= sample_every then begin
      samples := { time = t; mode; state = y } :: !samples;
      last_sampled := t
    end
  in
  let finish outcome =
    { samples = List.rev !samples; switches = List.rev !switches; outcome }
  in
  let rec go t mode y plan =
    match plan with
    | [] -> finish `Completed
    | label :: rest ->
      let ti = Mds.transition_index sys label in
      let tr = sys.Mds.transitions.(ti) in
      if tr.Mds.src <> mode then
        invalid_arg
          (Printf.sprintf "Simulate.run_policy: %s does not leave mode %s"
             label sys.Mds.modes.(mode).Mds.name);
      let entry_time = t in
      let flow = sys.Mds.modes.(mode).Mds.flow in
      let outcome = ref `Timeout in
      let stop ~t:tm y =
        let now = entry_time +. tm in
        record now mode y;
        if not (sys.Mds.safe mode y) then begin
          outcome := `Unsafe;
          true
        end
        else if now >= max_time then begin
          outcome := `Timeout;
          true
        end
        else if tm +. 1e-12 >= min_dwell && guard label y then begin
          outcome := `Switch;
          true
        end
        else false
      in
      let tm, y =
        Ode.integrate flow ~dt ~max_time:(max_time -. entry_time) y ~stop
      in
      let now = entry_time +. tm in
      (match !outcome with
      | `Unsafe -> finish `Unsafe
      | `Timeout -> finish `Timeout
      | `Switch ->
        switches := { label; at = Array.copy y; switch_time = now } :: !switches;
        go now tr.Mds.dst y rest)
  in
  match plan with
  | [] -> { samples = []; switches = []; outcome = `Completed }
  | first :: _ ->
    let start =
      sys.Mds.transitions.(Mds.transition_index sys first).Mds.src
    in
    go 0.0 start state plan
