(** Numerical integration of ordinary differential equations.

    A fixed-step fourth-order Runge–Kutta integrator. This is the
    "deductive engine" of Section 5: an (assumed ideal) numerical
    simulator answering reachability queries about the intra-mode
    continuous dynamics. *)

type flow = float array -> float array
(** Autonomous vector field: state -> derivative. *)

val rk4_step : flow -> dt:float -> float array -> float array
(** One RK4 step; returns a fresh state array. *)

val integrate :
  flow ->
  dt:float ->
  max_time:float ->
  float array ->
  stop:(t:float -> float array -> bool) ->
  float * float array
(** Step until [stop] returns true or [max_time] elapses; [stop] is also
    evaluated on the initial state at [t = 0]. Returns the stop time and
    state. *)
