let a = 0.02
let t_env = 10.0
let t_heat = 30.0
let t_lo = 18.0
let t_hi = 22.0

let flow_toward target state = [| -.a *. (state.(0) -. target) |]

let system =
  {
    Mds.dim = 1;
    var_names = [| "x" |];
    modes =
      [|
        { Mds.name = "Off"; flow = flow_toward t_env };
        { Mds.name = "On"; flow = flow_toward t_heat };
      |];
    transitions = [| { Mds.label = "gOn"; src = 0; dst = 1 };
                     { Mds.label = "gOff"; src = 1; dst = 0 } |];
    safe = (fun _mode state -> t_lo <= state.(0) && state.(0) <= t_hi);
  }

let temperature state = state.(0)
let expected_off_guard_lo ~dwell = t_env +. ((t_lo -. t_env) *. exp (a *. dwell))
let expected_on_guard_hi ~dwell = t_heat -. ((t_heat -. t_hi) *. exp (a *. dwell))
