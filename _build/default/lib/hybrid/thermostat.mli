(** A two-mode thermostat — a second switching-logic case study with a
    closed-form answer.

    State is the room temperature [x]. Mode Off cools toward the ambient
    temperature, mode On heats toward the heater equilibrium:

      Off: dx/dt = -a (x - t_env)        On: dx/dt = -a (x - t_heat)

    The safety property is  t_lo <= x <= t_hi. Because the dynamics are
    linear, the safe switching sets under a dwell requirement tau have
    closed forms — {!expected_off_guard_lo} and {!expected_on_guard_hi} —
    which the hyperbox learner must reproduce, giving an analytic
    end-to-end check of the Section 5 machinery on a system other than
    the transmission. *)

val a : float  (** thermal rate, 0.02 *)

val t_env : float  (** 10 *)

val t_heat : float  (** 30 *)

val t_lo : float  (** 18 *)

val t_hi : float  (** 22 *)

val system : Mds.t
(** Modes Off (0) and On (1); transitions gOn : Off -> On and
    gOff : On -> Off; safety [t_lo <= x <= t_hi]. *)

val temperature : float array -> float

val expected_off_guard_lo : dwell:float -> float
(** Entering Off at x, the temperature after the dwell is
    t_env + (x - t_env) e^(-a tau) >= t_lo, i.e.
    x >= t_env + (t_lo - t_env) e^(a tau). *)

val expected_on_guard_hi : dwell:float -> float
(** Symmetrically, x <= t_heat - (t_heat - t_hi) e^(a tau). *)
