let theta_max = 1700.0
let a = [| 10.0; 20.0; 30.0 |]

let eta gear omega =
  let ai = a.(gear - 1) in
  (0.99 *. exp (-.((omega -. ai) ** 2.) /. 64.)) +. 0.01

let eta_threshold gear =
  (* eta >= 0.5  <=>  (omega - a_i)^2 <= 64 ln(0.99 / 0.49) *)
  let r = sqrt (64.0 *. log (0.99 /. 0.49)) in
  let ai = a.(gear - 1) in
  (ai -. r, ai +. r)

let omega_of state = state.(1)
let theta_of state = state.(0)

(* state = [| theta; omega |] *)
let gear_flow gear throttle state =
  let omega = state.(1) in
  [| omega; throttle *. eta gear omega |]

let neutral_flow _state = [| 0.0; 0.0 |]

let modes =
  [|
    { Mds.name = "N"; flow = neutral_flow };
    { Mds.name = "G1U"; flow = gear_flow 1 1.0 };
    { Mds.name = "G2U"; flow = gear_flow 2 1.0 };
    { Mds.name = "G3U"; flow = gear_flow 3 1.0 };
    { Mds.name = "G3D"; flow = gear_flow 3 (-1.0) };
    { Mds.name = "G2D"; flow = gear_flow 2 (-1.0) };
    { Mds.name = "G1D"; flow = gear_flow 1 (-1.0) };
  |]

let gear_of_mode = [| 0; 1; 2; 3; 3; 2; 1 |]

let safe mode state =
  let omega = state.(1) in
  0.0 <= omega
  && omega <= 60.0
  &&
  let gear = gear_of_mode.(mode) in
  gear = 0 || omega < 5.0 || eta gear omega >= 0.5

let tr label src dst = { Mds.label; src; dst }

(* mode indices: 0 N, 1 G1U, 2 G2U, 3 G3U, 4 G3D, 5 G2D, 6 G1D *)
let transitions =
  [|
    tr "gN1U" 0 1;
    tr "g11U" 1 1;
    tr "g12U" 1 2;
    tr "g22U" 2 2;
    tr "g23U" 2 3;
    tr "g33U" 3 3;
    tr "g33D" 3 4;
    tr "g32D" 4 5;
    tr "g22D" 5 5;
    tr "g21D" 5 6;
    tr "g11D" 6 6;
    tr "g1ND" 6 0;
  |]

let system =
  {
    Mds.dim = 2;
    var_names = [| "theta"; "omega" |];
    modes;
    transitions;
    safe;
  }

let cycle = [ "gN1U"; "g12U"; "g23U"; "g33D"; "g32D"; "g21D"; "g1ND" ]

let initial_guard_overapprox = function
  | "g1ND" -> (0.0, 0.0)
  | _ -> (0.0, 60.0)
