(** The 3-gear automatic transmission of Fig. 9 (after Lygeros).

    State is [(theta, omega)]: distance covered and speed. Seven modes:
    Neutral, three accelerating gears G1U..G3U (throttle u = 1) and three
    decelerating gears G1D..G3D (throttle d = -1). Gear [i] transmits
    with efficiency

      eta_i(omega) = 0.99 exp(-(omega - a_i)^2 / 64) + 0.01,
      a = (10, 20, 30),

    and acceleration is throttle times efficiency. The safety property

      phi_S = (omega >= 5 => eta >= 0.5) /\ (0 <= omega <= 60)

    is what the switching logic of Section 5.4 must enforce. *)

val theta_max : float
(** 1700, the target distance. *)

val a : float array
(** Peak-efficiency speeds of the three gears. *)

val eta : int -> float -> float
(** [eta gear omega], [gear] in 1..3. *)

val eta_threshold : int -> float * float
(** The exact speed interval on which [eta gear omega >= 0.5]; the Eq. 3
    guard bounds are grid roundings of these. *)

val system : Mds.t
(** The full MDS: modes N, G1U, G2U, G3U, G3D, G2D, G1D; the twelve
    transitions of Fig. 9 (gN1U, g11U, g12U, g22U, g23U, g33U, g33D,
    g32D, g22D, g21D, g11D, g1ND); and phi_S as the safety predicate. *)

val omega_of : float array -> float
val theta_of : float array -> float

val cycle : string list
(** The gear sequence of Fig. 10:
    gN1U; g12U; g23U; g33D; g32D; g21D; g1ND. *)

val initial_guard_overapprox : string -> float * float
(** Initial per-guard over-approximation over omega: the phi_S speed
    range [0, 60] for all guards except g1ND, which the paper initializes
    to (and keeps at) the point omega = 0. *)
