(** A small RISC instruction set.

    The target of {!Compile} and the input of {!Machine}. The machine has
    16 general-purpose registers and a flat byte-addressed data memory;
    variables are compiled to fixed word-aligned memory slots so that
    loads and stores exercise the data cache. Branch targets are absolute
    instruction indices. *)

type reg = int (** 0..15 *)

type instr =
  | Li of reg * int  (** load immediate *)
  | Mov of reg * reg
  | Add of reg * reg * reg
  | Sub of reg * reg * reg
  | Mul of reg * reg * reg
      (** iterative early-termination multiplier: latency depends on the
          magnitude of the second operand, as on the StrongARM *)
  | Div of reg * reg * reg  (** unsigned; div-by-zero yields all-ones *)
  | Rem of reg * reg * reg  (** unsigned; rem-by-zero yields the dividend *)
  | And of reg * reg * reg
  | Or of reg * reg * reg
  | Xor of reg * reg * reg
  | Not of reg * reg
  | Neg of reg * reg
  | Shl of reg * reg * reg
  | Shr of reg * reg * reg  (** logical *)
  | Sar of reg * reg * reg  (** arithmetic *)
  | Ld of reg * int  (** load from byte address *)
  | St of int * reg  (** store to byte address *)
  | Beq of reg * reg * int
  | Bne of reg * reg * int
  | Bltu of reg * reg * int
  | Bgeu of reg * reg * int
  | Jmp of int
  | Halt
  | Trap  (** failed assumption *)

val num_regs : int
val uses : instr -> reg list
(** Source registers read by the instruction. *)

val defines : instr -> reg option
(** Destination register, if any. *)

val pp : Format.formatter -> instr -> unit
val pp_program : Format.formatter -> instr array -> unit
