(** Cycle-accurate execution of compiled programs.

    Models an in-order 5-stage pipeline in the style of the StrongARM-1100
    (the platform of the paper's Fig. 6 experiment): one instruction per
    cycle, plus

    - instruction-cache and data-cache miss penalties,
    - a one-cycle load-use interlock,
    - a two-cycle taken-branch flush,
    - an iterative early-termination multiplier whose latency depends on
      the magnitude of the second operand, and
    - an iterative divider whose latency depends on the dividend.

    These data-dependent latencies are exactly what makes execution time
    path-dependent, which is what GameTime's (w, pi) model must capture. *)

exception Trap_executed
exception Out_of_fuel

(** Direction prediction for conditional branches. Mispredictions cost
    the two-cycle flush; unconditional jumps always flush. *)
type predictor =
  | Static_not_taken  (** the default: every taken branch flushes *)
  | Backward_taken  (** predict taken for backward branches (loops) *)
  | Bimodal of int  (** 2-bit saturating counters, table size (power of 2) *)

type stats = {
  cycles : int;
  instructions : int;
  icache_hits : int;
  icache_misses : int;
  dcache_hits : int;
  dcache_misses : int;
  mispredictions : int;
}

type result = {
  stats : stats;
  outputs : (string * int) list;  (** program outputs read from memory *)
}

val run :
  ?fuel:int ->
  ?icache:Cache.config ->
  ?dcache:Cache.config ->
  ?cache_rng:Random.State.t ->
  ?predictor:predictor ->
  Compile.t ->
  (string * int) list ->
  result
(** Execute from cold caches, or — when [cache_rng] is given — from
    randomized cache contents, modelling an adversarially unknown
    starting environment state. [fuel] bounds executed instructions
    (default 1_000_000). *)
