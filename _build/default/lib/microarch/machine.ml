module Bv = Smt.Bv

exception Trap_executed
exception Out_of_fuel

type predictor =
  | Static_not_taken
  | Backward_taken
  | Bimodal of int

type stats = {
  cycles : int;
  instructions : int;
  icache_hits : int;
  icache_misses : int;
  dcache_hits : int;
  dcache_misses : int;
  mispredictions : int;
}

type result = {
  stats : stats;
  outputs : (string * int) list;
}

let significant_bits v =
  let rec go n v = if v = 0 then n else go (n + 1) (v lsr 1) in
  go 0 v

(* early-termination multiplier: the StrongARM retires 12 bits of the
   multiplier per cycle; we retire 4 bits per cycle of the second operand *)
let mul_latency b = 1 + ((significant_bits b + 3) / 4)

(* iterative restoring divider: one cycle per significant dividend bit *)
let div_latency a = 2 + significant_bits a

let taken_branch_penalty = 2
let instr_bytes = 4

let run ?(fuel = 1_000_000) ?(icache = Cache.default_icache)
    ?(dcache = Cache.default_dcache) ?cache_rng
    ?(predictor = Static_not_taken) (c : Compile.t) inputs =
  let width = c.Compile.width in
  let trunc v = Bv.truncate ~width v in
  let regs = Array.make Isa.num_regs 0 in
  let mem = Hashtbl.create 32 in
  let ic = Cache.create icache and dc = Cache.create dcache in
  (match cache_rng with
  | None -> ()
  | Some rng ->
    Cache.randomize ic rng;
    Cache.randomize dc rng);
  List.iter
    (fun x ->
      let v = Option.value (List.assoc_opt x inputs) ~default:0 in
      Hashtbl.replace mem (Compile.slot_of c x) (trunc v))
    c.Compile.source.Prog.Lang.inputs;
  let cycles = ref 0 in
  let executed = ref 0 in
  let pc = ref 0 in
  let last_load : int option ref = ref None in
  let running = ref true in
  let mispredictions = ref 0 in
  let bimodal =
    match predictor with
    | Bimodal size ->
      if size <= 0 || size land (size - 1) <> 0 then
        invalid_arg "Machine.run: bimodal table size must be a power of two";
      Array.make size 1 (* weakly not-taken *)
    | _ -> [||]
  in
  while !running do
    if !executed >= fuel then raise Out_of_fuel;
    let instr = c.Compile.instrs.(!pc) in
    incr executed;
    (* fetch: one base cycle plus I-cache behaviour *)
    cycles := !cycles + 1 + Cache.access ic (!pc * instr_bytes);
    (* load-use interlock *)
    (match !last_load with
    | Some r when List.mem r (Isa.uses instr) -> incr cycles
    | _ -> ());
    last_load := None;
    let next = ref (!pc + 1) in
    let set d v = regs.(d) <- trunc v in
    (* unconditional control transfer always flushes *)
    let taken t =
      next := t;
      cycles := !cycles + taken_branch_penalty
    in
    (* conditional branch: charge the flush only on a misprediction *)
    let branch target cond =
      let predicted_taken =
        match predictor with
        | Static_not_taken -> false
        | Backward_taken -> target <= !pc
        | Bimodal size -> bimodal.(!pc land (size - 1)) >= 2
      in
      (match predictor with
      | Bimodal size ->
        let idx = !pc land (size - 1) in
        bimodal.(idx) <-
          (if cond then min 3 (bimodal.(idx) + 1) else max 0 (bimodal.(idx) - 1))
      | _ -> ());
      if cond <> predicted_taken then begin
        incr mispredictions;
        cycles := !cycles + taken_branch_penalty
      end;
      if cond then next := target
    in
    (match instr with
    | Isa.Li (d, v) -> set d v
    | Isa.Mov (d, a) -> set d regs.(a)
    | Isa.Add (d, a, b) -> set d (regs.(a) + regs.(b))
    | Isa.Sub (d, a, b) -> set d (regs.(a) - regs.(b))
    | Isa.Mul (d, a, b) ->
      cycles := !cycles + mul_latency regs.(b);
      set d (regs.(a) * regs.(b))
    | Isa.Div (d, a, b) ->
      cycles := !cycles + div_latency regs.(a);
      set d (if regs.(b) = 0 then (1 lsl width) - 1 else regs.(a) / regs.(b))
    | Isa.Rem (d, a, b) ->
      cycles := !cycles + div_latency regs.(a);
      set d (if regs.(b) = 0 then regs.(a) else regs.(a) mod regs.(b))
    | Isa.And (d, a, b) -> set d (regs.(a) land regs.(b))
    | Isa.Or (d, a, b) -> set d (regs.(a) lor regs.(b))
    | Isa.Xor (d, a, b) -> set d (regs.(a) lxor regs.(b))
    | Isa.Not (d, a) -> set d (lnot regs.(a))
    | Isa.Neg (d, a) -> set d (-regs.(a))
    | Isa.Shl (d, a, b) -> set d (if regs.(b) >= width then 0 else regs.(a) lsl regs.(b))
    | Isa.Shr (d, a, b) -> set d (if regs.(b) >= width then 0 else regs.(a) lsr regs.(b))
    | Isa.Sar (d, a, b) ->
      let s = Bv.to_signed ~width regs.(a) in
      set d (if regs.(b) >= width then s asr 62 else s asr regs.(b))
    | Isa.Ld (d, addr) ->
      cycles := !cycles + Cache.access dc addr;
      set d (Option.value (Hashtbl.find_opt mem addr) ~default:0);
      last_load := Some d
    | Isa.St (addr, a) ->
      cycles := !cycles + Cache.access dc addr;
      Hashtbl.replace mem addr regs.(a)
    | Isa.Beq (a, b, t) -> branch t (regs.(a) = regs.(b))
    | Isa.Bne (a, b, t) -> branch t (regs.(a) <> regs.(b))
    | Isa.Bltu (a, b, t) -> branch t (regs.(a) < regs.(b))
    | Isa.Bgeu (a, b, t) -> branch t (regs.(a) >= regs.(b))
    | Isa.Jmp t -> taken t
    | Isa.Halt -> running := false
    | Isa.Trap -> raise Trap_executed);
    if !running then pc := !next
  done;
  let outputs =
    List.map
      (fun x ->
        ( x,
          Option.value
            (Hashtbl.find_opt mem (Compile.slot_of c x))
            ~default:0 ))
      c.Compile.source.Prog.Lang.outputs
  in
  {
    stats =
      {
        cycles = !cycles;
        instructions = !executed;
        icache_hits = Cache.hits ic;
        icache_misses = Cache.misses ic;
        dcache_hits = Cache.hits dc;
        dcache_misses = Cache.misses dc;
        mispredictions = !mispredictions;
      };
    outputs;
  }
