(** A direct-mapped cache model.

    Tracks only tags (timing, not contents). Used twice by {!Machine}:
    once for instruction fetches and once for data accesses. *)

type config = {
  lines : int;  (** number of cache lines; must be a power of two *)
  line_bytes : int;  (** bytes per line; must be a power of two *)
  miss_penalty : int;  (** extra cycles charged on a miss *)
}

type t

val default_icache : config
val default_dcache : config

val create : config -> t
val reset : t -> unit

val randomize : t -> Random.State.t -> unit
(** Fill the tag array with random blocks: an unknown starting
    environment state, the adversary's "state dimension" of problem
    <TA>. *)

val access : t -> int -> int
(** [access c addr] records an access and returns the extra cycles it
    costs (0 on a hit, [miss_penalty] on a miss). *)

val hits : t -> int
val misses : t -> int
