(** Compiler from the {!Prog.Lang} IR to {!Isa} machine code.

    Program variables live in fixed word-aligned memory slots (so variable
    traffic exercises the data cache); expressions are evaluated in a
    register stack r0..r11. Loops compile to backward branches — programs
    are compiled {e without} unrolling, since the machine executes loops
    natively. [Assume] statements compile to a conditional branch to a
    trap. *)

type t = {
  source : Prog.Lang.t;
  instrs : Isa.instr array;
  slots : (string * int) list;  (** variable -> byte address *)
  width : int;
}

exception Register_pressure
(** Raised when an expression is too deep for the register stack. *)

val compile : Prog.Lang.t -> t
val slot_of : t -> string -> int
val pp : Format.formatter -> t -> unit
