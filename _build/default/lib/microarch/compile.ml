module Bv = Smt.Bv
module Lang = Prog.Lang

type t = {
  source : Lang.t;
  instrs : Isa.instr array;
  slots : (string * int) list;
  width : int;
}

exception Register_pressure

let word_bytes = 2
let max_scratch = 12 (* r0..r11 usable by the expression stack *)

type builder = {
  mutable code : Isa.instr list; (* reverse *)
  mutable len : int;
  labels : (int, int) Hashtbl.t; (* label id -> instruction index *)
  mutable next_label : int;
  slots : (string, int) Hashtbl.t;
  mutable next_slot : int;
  width : int;
}

let emit b i =
  b.code <- i :: b.code;
  b.len <- b.len + 1

let new_label b =
  let l = b.next_label in
  b.next_label <- l + 1;
  l

let place b l = Hashtbl.replace b.labels l b.len

let slot b x =
  match Hashtbl.find_opt b.slots x with
  | Some a -> a
  | None ->
    let a = b.next_slot in
    b.next_slot <- a + word_bytes;
    Hashtbl.replace b.slots x a;
    a

let scratch r = if r >= max_scratch then raise Register_pressure else r

(* Compile [e] into register [dst], using registers > dst as scratch. *)
let rec expr b dst e =
  let dst = scratch dst in
  match (e : Bv.term) with
  | Bv.Const { value; _ } -> emit b (Isa.Li (dst, value))
  | Bv.Var { name; _ } -> emit b (Isa.Ld (dst, slot b name))
  | Bv.Unop (op, a) ->
    expr b dst a;
    emit b
      (match op with
      | Bv.Bnot -> Isa.Not (dst, dst)
      | Bv.Bneg -> Isa.Neg (dst, dst))
  | Bv.Binop (op, a, bb) ->
    expr b dst a;
    let tmp = scratch (dst + 1) in
    expr b tmp bb;
    let signed_shift () =
      (* Bashr works on the signed interpretation directly *)
      emit b (Isa.Sar (dst, dst, tmp))
    in
    (match op with
    | Bv.Band -> emit b (Isa.And (dst, dst, tmp))
    | Bv.Bor -> emit b (Isa.Or (dst, dst, tmp))
    | Bv.Bxor -> emit b (Isa.Xor (dst, dst, tmp))
    | Bv.Badd -> emit b (Isa.Add (dst, dst, tmp))
    | Bv.Bsub -> emit b (Isa.Sub (dst, dst, tmp))
    | Bv.Bmul -> emit b (Isa.Mul (dst, dst, tmp))
    | Bv.Budiv -> emit b (Isa.Div (dst, dst, tmp))
    | Bv.Burem -> emit b (Isa.Rem (dst, dst, tmp))
    | Bv.Bshl -> emit b (Isa.Shl (dst, dst, tmp))
    | Bv.Blshr -> emit b (Isa.Shr (dst, dst, tmp))
    | Bv.Bashr -> signed_shift ())
  | Bv.Ite (c, a, bb) ->
    let lelse = new_label b and lend = new_label b in
    branch_false b (dst + 1) c lelse;
    expr b dst a;
    emit b (Isa.Jmp lend);
    place b lelse;
    expr b dst bb;
    place b lend

(* Jump to [target] when the formula is false; fall through when true.
   [base] is the first free scratch register. *)
and branch_false b base f target =
  match (f : Bv.formula) with
  | Bv.Btrue -> ()
  | Bv.Bfalse -> emit b (Isa.Jmp target)
  | Bv.Pvar _ -> invalid_arg "Compile: boolean variables are not compilable"
  | Bv.Eq (x, y) ->
    cmp_operands b base x y;
    emit b (Isa.Bne (base, base + 1, target))
  | Bv.Ult (x, y) ->
    cmp_operands b base x y;
    emit b (Isa.Bgeu (base, base + 1, target))
  | Bv.Ule (x, y) ->
    cmp_operands b base x y;
    emit b (Isa.Bltu (base + 1, base, target))
  | Bv.Slt (x, y) ->
    signed_cmp_operands b base x y;
    emit b (Isa.Bgeu (base, base + 1, target))
  | Bv.Sle (x, y) ->
    signed_cmp_operands b base x y;
    emit b (Isa.Bltu (base + 1, base, target))
  | Bv.Fnot g -> branch_true b base g target
  | Bv.Fand (x, y) ->
    branch_false b base x target;
    branch_false b base y target
  | Bv.For (x, y) ->
    let ltrue = new_label b in
    branch_true b base x ltrue;
    branch_false b base y target;
    place b ltrue
  | Bv.Fxor (x, y) ->
    materialize b base x;
    materialize b (base + 1) y;
    emit b (Isa.Beq (base, base + 1, target))

(* Jump to [target] when the formula is true. *)
and branch_true b base f target =
  match (f : Bv.formula) with
  | Bv.Btrue -> emit b (Isa.Jmp target)
  | Bv.Bfalse -> ()
  | Bv.Pvar _ -> invalid_arg "Compile: boolean variables are not compilable"
  | Bv.Eq (x, y) ->
    cmp_operands b base x y;
    emit b (Isa.Beq (base, base + 1, target))
  | Bv.Ult (x, y) ->
    cmp_operands b base x y;
    emit b (Isa.Bltu (base, base + 1, target))
  | Bv.Ule (x, y) ->
    cmp_operands b base x y;
    emit b (Isa.Bgeu (base + 1, base, target))
  | Bv.Slt (x, y) ->
    signed_cmp_operands b base x y;
    emit b (Isa.Bltu (base, base + 1, target))
  | Bv.Sle (x, y) ->
    signed_cmp_operands b base x y;
    emit b (Isa.Bgeu (base + 1, base, target))
  | Bv.Fnot g -> branch_false b base g target
  | Bv.Fand (x, y) ->
    let lfalse = new_label b in
    branch_false b base x lfalse;
    branch_true b base y target;
    place b lfalse
  | Bv.For (x, y) ->
    branch_true b base x target;
    branch_true b base y target
  | Bv.Fxor (x, y) ->
    materialize b base x;
    materialize b (base + 1) y;
    emit b (Isa.Bne (base, base + 1, target))

and cmp_operands b base x y =
  let base = scratch base in
  expr b base x;
  expr b (base + 1) y

and signed_cmp_operands b base x y =
  (* reduce signed comparison to unsigned by flipping the sign bits *)
  cmp_operands b base x y;
  let msb = scratch (base + 2) in
  emit b (Isa.Li (msb, 1 lsl (b.width - 1)));
  emit b (Isa.Xor (base, base, msb));
  emit b (Isa.Xor (base + 1, base + 1, msb))

(* Put 1 in [dst] if the formula holds, else 0. *)
and materialize b dst f =
  let dst = scratch dst in
  let lfalse = new_label b and lend = new_label b in
  branch_false b (dst + 1) f lfalse;
  emit b (Isa.Li (dst, 1));
  emit b (Isa.Jmp lend);
  place b lfalse;
  emit b (Isa.Li (dst, 0));
  place b lend

let rec stmt b trap = function
  | Lang.Assign (x, e) ->
    expr b 0 e;
    emit b (Isa.St (slot b x, 0))
  | Lang.Assume f -> branch_false b 0 f trap
  | Lang.If (c, then_, else_) ->
    let lelse = new_label b and lend = new_label b in
    branch_false b 0 c lelse;
    List.iter (stmt b trap) then_;
    emit b (Isa.Jmp lend);
    place b lelse;
    List.iter (stmt b trap) else_;
    place b lend
  | Lang.While (c, body) ->
    (* rotated loop: a guard test up front, then a bottom-tested body
       whose latch is a backward conditional branch — the shape branch
       predictors are built for *)
    let ltop = new_label b and lend = new_label b in
    branch_false b 0 c lend;
    place b ltop;
    List.iter (stmt b trap) body;
    branch_true b 0 c ltop;
    place b lend

let compile (p : Lang.t) =
  let b =
    {
      code = [];
      len = 0;
      labels = Hashtbl.create 16;
      next_label = 0;
      slots = Hashtbl.create 16;
      next_slot = 0;
      width = p.Lang.width;
    }
  in
  (* pre-allocate input and output slots in declaration order for a
     stable layout (an output may never be assigned: it reads as 0, like
     in the interpreter, so it still needs a slot) *)
  List.iter (fun x -> ignore (slot b x)) p.Lang.inputs;
  List.iter (fun x -> ignore (slot b x)) p.Lang.outputs;
  let trap = new_label b in
  List.iter (stmt b trap) p.Lang.body;
  emit b Isa.Halt;
  place b trap;
  emit b Isa.Trap;
  let resolve l =
    match Hashtbl.find_opt b.labels l with
    | Some idx -> idx
    | None -> invalid_arg "Compile: unplaced label"
  in
  let patch = function
    | Isa.Beq (x, y, l) -> Isa.Beq (x, y, resolve l)
    | Isa.Bne (x, y, l) -> Isa.Bne (x, y, resolve l)
    | Isa.Bltu (x, y, l) -> Isa.Bltu (x, y, resolve l)
    | Isa.Bgeu (x, y, l) -> Isa.Bgeu (x, y, resolve l)
    | Isa.Jmp l -> Isa.Jmp (resolve l)
    | i -> i
  in
  let instrs = Array.of_list (List.rev_map patch b.code) in
  let slots =
    Hashtbl.fold (fun x a acc -> (x, a) :: acc) b.slots []
    |> List.sort (fun (_, a) (_, a') -> compare a a')
  in
  { source = p; instrs; slots; width = p.Lang.width }

let slot_of (t : t) x =
  match List.assoc_opt x t.slots with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Compile.slot_of: unknown variable %s" x)

let pp fmt (t : t) =
  Format.fprintf fmt "@[<v>; %s, %d instructions@," t.source.Lang.name
    (Array.length t.instrs);
  List.iter (fun (x, a) -> Format.fprintf fmt "; %s at [%d]@," x a) t.slots;
  Isa.pp_program fmt t.instrs;
  Format.fprintf fmt "@]"
