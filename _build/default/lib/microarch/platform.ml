type t = {
  compiled : Compile.t;
  icache : Cache.config;
  dcache : Cache.config;
  cache_rng : Random.State.t option;
  predictor : Machine.predictor;
}

let create ?(icache = Cache.default_icache) ?(dcache = Cache.default_dcache)
    ?noise_seed ?(predictor = Machine.Static_not_taken) p =
  {
    compiled = Compile.compile p;
    icache;
    dcache;
    cache_rng = Option.map (fun s -> Random.State.make [| s |]) noise_seed;
    predictor;
  }

let program t = t.compiled.Compile.source

let run t inputs =
  Machine.run ~icache:t.icache ~dcache:t.dcache ?cache_rng:t.cache_rng
    ~predictor:t.predictor t.compiled inputs

let time t inputs = (run t inputs).Machine.stats.Machine.cycles
let code_size t = Array.length t.compiled.Compile.instrs
