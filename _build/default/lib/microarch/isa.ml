type reg = int

type instr =
  | Li of reg * int
  | Mov of reg * reg
  | Add of reg * reg * reg
  | Sub of reg * reg * reg
  | Mul of reg * reg * reg
  | Div of reg * reg * reg
  | Rem of reg * reg * reg
  | And of reg * reg * reg
  | Or of reg * reg * reg
  | Xor of reg * reg * reg
  | Not of reg * reg
  | Neg of reg * reg
  | Shl of reg * reg * reg
  | Shr of reg * reg * reg
  | Sar of reg * reg * reg
  | Ld of reg * int
  | St of int * reg
  | Beq of reg * reg * int
  | Bne of reg * reg * int
  | Bltu of reg * reg * int
  | Bgeu of reg * reg * int
  | Jmp of int
  | Halt
  | Trap

let num_regs = 16

let uses = function
  | Li _ | Ld _ | Jmp _ | Halt | Trap -> []
  | Mov (_, a) | Not (_, a) | Neg (_, a) -> [ a ]
  | Add (_, a, b)
  | Sub (_, a, b)
  | Mul (_, a, b)
  | Div (_, a, b)
  | Rem (_, a, b)
  | And (_, a, b)
  | Or (_, a, b)
  | Xor (_, a, b)
  | Shl (_, a, b)
  | Shr (_, a, b)
  | Sar (_, a, b) -> [ a; b ]
  | St (_, a) -> [ a ]
  | Beq (a, b, _) | Bne (a, b, _) | Bltu (a, b, _) | Bgeu (a, b, _) -> [ a; b ]

let defines = function
  | Li (d, _)
  | Mov (d, _)
  | Add (d, _, _)
  | Sub (d, _, _)
  | Mul (d, _, _)
  | Div (d, _, _)
  | Rem (d, _, _)
  | And (d, _, _)
  | Or (d, _, _)
  | Xor (d, _, _)
  | Not (d, _)
  | Neg (d, _)
  | Shl (d, _, _)
  | Shr (d, _, _)
  | Sar (d, _, _)
  | Ld (d, _) -> Some d
  | St _ | Beq _ | Bne _ | Bltu _ | Bgeu _ | Jmp _ | Halt | Trap -> None

let pp fmt = function
  | Li (d, v) -> Format.fprintf fmt "li    r%d, %d" d v
  | Mov (d, a) -> Format.fprintf fmt "mov   r%d, r%d" d a
  | Add (d, a, b) -> Format.fprintf fmt "add   r%d, r%d, r%d" d a b
  | Sub (d, a, b) -> Format.fprintf fmt "sub   r%d, r%d, r%d" d a b
  | Mul (d, a, b) -> Format.fprintf fmt "mul   r%d, r%d, r%d" d a b
  | Div (d, a, b) -> Format.fprintf fmt "div   r%d, r%d, r%d" d a b
  | Rem (d, a, b) -> Format.fprintf fmt "rem   r%d, r%d, r%d" d a b
  | And (d, a, b) -> Format.fprintf fmt "and   r%d, r%d, r%d" d a b
  | Or (d, a, b) -> Format.fprintf fmt "or    r%d, r%d, r%d" d a b
  | Xor (d, a, b) -> Format.fprintf fmt "xor   r%d, r%d, r%d" d a b
  | Not (d, a) -> Format.fprintf fmt "not   r%d, r%d" d a
  | Neg (d, a) -> Format.fprintf fmt "neg   r%d, r%d" d a
  | Shl (d, a, b) -> Format.fprintf fmt "shl   r%d, r%d, r%d" d a b
  | Shr (d, a, b) -> Format.fprintf fmt "shr   r%d, r%d, r%d" d a b
  | Sar (d, a, b) -> Format.fprintf fmt "sar   r%d, r%d, r%d" d a b
  | Ld (d, addr) -> Format.fprintf fmt "ld    r%d, [%d]" d addr
  | St (addr, a) -> Format.fprintf fmt "st    [%d], r%d" addr a
  | Beq (a, b, t) -> Format.fprintf fmt "beq   r%d, r%d, @%d" a b t
  | Bne (a, b, t) -> Format.fprintf fmt "bne   r%d, r%d, @%d" a b t
  | Bltu (a, b, t) -> Format.fprintf fmt "bltu  r%d, r%d, @%d" a b t
  | Bgeu (a, b, t) -> Format.fprintf fmt "bgeu  r%d, r%d, @%d" a b t
  | Jmp t -> Format.fprintf fmt "jmp   @%d" t
  | Halt -> Format.pp_print_string fmt "halt"
  | Trap -> Format.pp_print_string fmt "trap"

let pp_program fmt instrs =
  Array.iteri (fun i ins -> Format.fprintf fmt "%3d: %a@," i pp ins) instrs
