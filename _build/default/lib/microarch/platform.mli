(** The end-to-end timing oracle handed to GameTime.

    GameTime (Section 3 of the paper) treats the platform as a black box:
    the only observable is the end-to-end execution time of a run. This
    module packages compilation + cycle-accurate execution behind exactly
    that interface. *)

type t

val create :
  ?icache:Cache.config ->
  ?dcache:Cache.config ->
  ?noise_seed:int ->
  ?predictor:Machine.predictor ->
  Prog.Lang.t ->
  t
(** Compiles the program once. By default each measurement starts from
    cold caches (a fixed starting environment state); with [noise_seed],
    every run starts from freshly randomized cache contents — the
    adversarial environment of the (w, pi) game, making repeated
    measurements genuinely noisy. *)

val program : t -> Prog.Lang.t

val time : t -> (string * int) list -> int
(** End-to-end cycle count of one run on the given inputs. *)

val run : t -> (string * int) list -> Machine.result
val code_size : t -> int
