lib/microarch/platform.mli: Cache Machine Prog
