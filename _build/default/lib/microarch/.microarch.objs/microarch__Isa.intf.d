lib/microarch/isa.mli: Format
