lib/microarch/machine.mli: Cache Compile Random
