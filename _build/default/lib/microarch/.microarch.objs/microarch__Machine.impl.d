lib/microarch/machine.ml: Array Cache Compile Hashtbl Isa List Option Prog Smt
