lib/microarch/platform.ml: Array Cache Compile Machine Option Random
