lib/microarch/cache.ml: Array Random
