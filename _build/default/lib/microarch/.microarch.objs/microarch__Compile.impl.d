lib/microarch/compile.ml: Array Format Hashtbl Isa List Printf Prog Smt
