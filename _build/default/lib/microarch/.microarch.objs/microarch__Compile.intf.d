lib/microarch/compile.mli: Format Isa Prog
