lib/microarch/isa.ml: Array Format
