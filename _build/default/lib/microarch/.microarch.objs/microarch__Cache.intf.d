lib/microarch/cache.mli: Random
