type config = { lines : int; line_bytes : int; miss_penalty : int }

type t = {
  config : config;
  tags : int array; (* -1 = invalid *)
  mutable hits : int;
  mutable misses : int;
}

let default_icache = { lines = 16; line_bytes = 16; miss_penalty = 8 }
let default_dcache = { lines = 8; line_bytes = 8; miss_penalty = 12 }

let is_pow2 n = n > 0 && n land (n - 1) = 0

let create config =
  if not (is_pow2 config.lines && is_pow2 config.line_bytes) then
    invalid_arg "Cache.create: lines and line_bytes must be powers of two";
  { config; tags = Array.make config.lines (-1); hits = 0; misses = 0 }

let reset c =
  Array.fill c.tags 0 (Array.length c.tags) (-1);
  c.hits <- 0;
  c.misses <- 0

let randomize c rng =
  for i = 0 to Array.length c.tags - 1 do
    (* a random block mapping to this line, or invalid *)
    c.tags.(i) <-
      (if Random.State.bool rng then -1
       else (Random.State.int rng 64 * c.config.lines) + i)
  done;
  c.hits <- 0;
  c.misses <- 0

let access c addr =
  let block = addr / c.config.line_bytes in
  let idx = block land (c.config.lines - 1) in
  if c.tags.(idx) = block then begin
    c.hits <- c.hits + 1;
    0
  end
  else begin
    c.misses <- c.misses + 1;
    c.tags.(idx) <- block;
    c.config.miss_penalty
  end

let hits c = c.hits
let misses c = c.misses
