(* Command-line interface over the sciduction applications.

     sciduction_cli deobfuscate --program p2 --width 8
     sciduction_cli timing --bits 6 --tau 550
     sciduction_cli transmission --dwell 5
     sciduction_cli cegar --junk 10
     sciduction_cli table *)

open Cmdliner

module Bv = Smt.Bv
module B = Prog.Benchmarks

(* ---- deobfuscate ---- *)

let deobfuscate_run program width =
  let obf, library, spec_fn =
    match program with
    | "p1" ->
      ( B.interchange_obs_w ~width,
        Ogis.Component.fig8_p1,
        fun ts -> (match ts with [ s; d ] -> [ d; s ] | _ -> assert false) )
    | "p2" ->
      ( B.multiply45_obs_w ~width,
        Ogis.Component.fig8_p2,
        fun ts ->
          (match ts with
          | [ y ] -> [ Bv.bmul y (Bv.const ~width 45) ]
          | _ -> assert false) )
    | other ->
      Format.eprintf "unknown program %s (use p1 or p2)@." other;
      exit 2
  in
  Format.printf "obfuscated source:@.%a@.@." Prog.Lang.pp obf;
  match Ogis.Deobfuscate.run ~library obf with
  | Error _ ->
    Format.printf "synthesis failed@.";
    1
  | Ok r ->
    Format.printf "re-synthesized in %.3fs (%d oracle queries):@.%a@."
      r.Ogis.Deobfuscate.seconds
      r.Ogis.Deobfuscate.stats.Ogis.Synth.oracle_queries Ogis.Straightline.pp
      r.Ogis.Deobfuscate.clean;
    let spec =
      {
        Ogis.Encode.width;
        ninputs = List.length obf.Prog.Lang.inputs;
        noutputs = List.length obf.Prog.Lang.outputs;
        library;
      }
    in
    (match Ogis.Synth.verify_against spec r.Ogis.Deobfuscate.clean ~spec_fn with
    | Ok () ->
      Format.printf "verified equivalent to the specification@.";
      0
    | Error cex ->
      Format.printf "NOT equivalent; counterexample %s@."
        (String.concat "," (List.map string_of_int cex));
      1)

let deobfuscate_cmd =
  let program =
    Arg.(
      value & opt string "p2"
      & info [ "program" ] ~docv:"NAME" ~doc:"Benchmark to deobfuscate: p1 or p2.")
  in
  let width =
    Arg.(value & opt int 8 & info [ "width" ] ~docv:"BITS" ~doc:"Word width.")
  in
  Cmd.v
    (Cmd.info "deobfuscate" ~doc:"Re-synthesize an obfuscated program (Fig. 8)")
    Term.(const deobfuscate_run $ program $ width)

(* ---- timing ---- *)

let timing_run file bits tau =
  let program, pin =
    match file with
    | Some f -> (Prog.Syntax.parse_file f, [])
    | None -> (B.modexp ~bits (), [ ("base", 123) ])
  in
  let pf = Microarch.Platform.create program in
  let platform = Microarch.Platform.time pf in
  let t =
    Gametime.Analysis.analyze ~bound:bits ~seed:2012 ~pin ~platform program
  in
  let w = Gametime.Analysis.wcet t ~platform in
  Format.printf "basis paths: %d; WCET %d cycles at %s@."
    (List.length t.Gametime.Analysis.basis)
    w.Gametime.Analysis.measured_cycles
    (String.concat ", "
       (List.map
          (fun (x, v) -> Printf.sprintf "%s=%d" x v)
          w.Gametime.Analysis.test));
  match tau with
  | None -> 0
  | Some tau -> (
    match Gametime.Analysis.answer_ta t ~platform ~tau with
    | `Yes ->
      Format.printf "<TA>: execution time is always <= %d@." tau;
      0
    | `No test ->
      Format.printf "<TA>: NO — exp=%d takes %d cycles@."
        (List.assoc "exp" test) (platform test);
      1)

let timing_cmd =
  let file =
    Arg.(
      value
      & opt (some file) None
      & info [ "file" ] ~docv:"FILE"
          ~doc:"Analyze this program instead of the built-in modexp.")
  in
  let bits =
    Arg.(
      value & opt int 6
      & info [ "bits" ] ~docv:"N"
          ~doc:"Exponent bits for modexp / loop-unrolling bound for --file.")
  in
  let tau =
    Arg.(
      value
      & opt (some int) None
      & info [ "tau" ] ~docv:"CYCLES" ~doc:"Answer problem <TA> for this bound.")
  in
  Cmd.v
    (Cmd.info "timing" ~doc:"GameTime analysis of a program (Sec. 3)")
    Term.(const timing_run $ file $ bits $ tau)

(* ---- transmission ---- *)

let transmission_run dwell grid =
  let r =
    if dwell > 0.0 then Switchsynth.Transmission_synth.synthesize ~dwell ~grid ()
    else Switchsynth.Transmission_synth.synthesize ~grid ()
  in
  Format.printf "converged=%b after %d iterations (%d simulator queries)@."
    r.Switchsynth.Fixpoint.converged r.Switchsynth.Fixpoint.iterations
    r.Switchsynth.Fixpoint.labels_queried;
  List.iter
    (fun (label, b) ->
      Format.printf "  %-6s %a@." label Switchsynth.Box.pp1 b)
    r.Switchsynth.Fixpoint.guards;
  0

let transmission_cmd =
  let dwell =
    Arg.(
      value & opt float 0.0
      & info [ "dwell" ] ~docv:"SECONDS" ~doc:"Minimum dwell per gear (0 = Eq. 3).")
  in
  let grid =
    Arg.(value & opt float 0.01 & info [ "grid" ] ~docv:"STEP" ~doc:"Guard grid.")
  in
  Cmd.v
    (Cmd.info "transmission"
       ~doc:"Synthesize transmission switching guards (Sec. 5)")
    Term.(const transmission_run $ dwell $ grid)

(* ---- cegar ---- *)

let cegar_run junk bits modulus bad_value =
  let t = Mc.Systems.mod_counter ~junk ~bits ~modulus ~bad_value () in
  Format.printf "system %s: %d latches@." t.Mc.Ts.name t.Mc.Ts.num_latches;
  match Mc.Cegar.verify t with
  | Mc.Cegar.Safe { abstract_latches; iterations; _ } ->
    Format.printf "SAFE: %d visible latches after %d iterations@."
      abstract_latches iterations;
    0
  | Mc.Cegar.Unsafe { trace; _ } ->
    Format.printf "UNSAFE: counterexample of %d steps@." (List.length trace);
    1

let cegar_cmd =
  let junk =
    Arg.(value & opt int 8 & info [ "junk" ] ~doc:"Irrelevant latches.")
  in
  let bits = Arg.(value & opt int 3 & info [ "bits" ] ~doc:"Counter width.") in
  let modulus = Arg.(value & opt int 6 & info [ "modulus" ] ~doc:"Wrap value.") in
  let bad_value =
    Arg.(value & opt int 7 & info [ "bad" ] ~doc:"Bad counter value.")
  in
  Cmd.v
    (Cmd.info "cegar" ~doc:"CEGAR on a counter with irrelevant latches")
    Term.(const cegar_run $ junk $ bits $ modulus $ bad_value)

(* ---- run ---- *)

let parse_binding s =
  match String.index_opt s '=' with
  | Some i ->
    let name = String.sub s 0 i in
    let v = String.sub s (i + 1) (String.length s - i - 1) in
    (match int_of_string_opt v with
    | Some v -> Ok (name, v)
    | None -> Error (`Msg (Printf.sprintf "bad value in %S" s)))
  | None -> Error (`Msg (Printf.sprintf "expected NAME=VALUE, got %S" s))

let binding_conv =
  Arg.conv (parse_binding, fun fmt (n, v) -> Format.fprintf fmt "%s=%d" n v)

let run_run file bindings machine =
  match Prog.Syntax.parse_file file with
  | exception Prog.Syntax.Parse_error { line; message } ->
    Format.eprintf "%s:%d: %s@." file line message;
    2
  | p ->
    Format.printf "%a@.@." Prog.Syntax.print p;
    let outputs = Prog.Interp.run p bindings in
    List.iter (fun (x, v) -> Format.printf "%s = %d@." x v) outputs;
    if machine then begin
      let pf = Microarch.Platform.create p in
      let r = Microarch.Platform.run pf bindings in
      Format.printf
        "machine: %d cycles, %d instructions, icache %d/%d, dcache %d/%d@."
        r.Microarch.Machine.stats.Microarch.Machine.cycles
        r.Microarch.Machine.stats.Microarch.Machine.instructions
        r.Microarch.Machine.stats.Microarch.Machine.icache_hits
        r.Microarch.Machine.stats.Microarch.Machine.icache_misses
        r.Microarch.Machine.stats.Microarch.Machine.dcache_hits
        r.Microarch.Machine.stats.Microarch.Machine.dcache_misses;
      if r.Microarch.Machine.outputs <> outputs then begin
        Format.printf "!! machine disagrees with the interpreter@.";
        exit 1
      end
    end;
    0

let run_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Program source (.imp).")
  in
  let bindings =
    Arg.(
      value & opt_all binding_conv []
      & info [ "in" ] ~docv:"NAME=VALUE" ~doc:"Input binding (repeatable).")
  in
  let machine =
    Arg.(
      value & flag
      & info [ "machine" ]
          ~doc:"Also execute on the cycle-accurate platform and report timing.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Parse and execute a program file")
    Term.(const run_run $ file $ bindings $ machine)

(* ---- table ---- *)

let table_run () =
  Format.printf "%a@." Sciduction.Instances.pp_table Sciduction.Instances.table1;
  Format.printf "@.%a@." Sciduction.Instances.pp_table
    Sciduction.Instances.section24;
  0

let table_cmd =
  Cmd.v
    (Cmd.info "table" ~doc:"Print the sciduction instance tables")
    Term.(const table_run $ const ())

let () =
  let doc = "sciduction: induction + deduction + structure hypotheses" in
  exit
    (Cmd.eval'
       (Cmd.group
          (Cmd.info "sciduction_cli" ~doc)
          [
            deobfuscate_cmd; timing_cmd; transmission_cmd; cegar_cmd;
            table_cmd; run_cmd;
          ]))
