(* Validator for JSON-lines telemetry traces, used by CI's perf-smoke
   job and the test suite:

     trace_check out.jsonl --require-loop ogis

   Checks that every line parses as a JSON object of a known record
   kind, that timestamps and durations are sane, that emission times
   are monotonically non-decreasing (spans are emitted at completion,
   so a span's emission time is t + dur), that span depths are
   consistent with the nesting their intervals imply (every non-root
   completed span sits directly inside a completed span one level up),
   that each loop's event stream is well-formed (loop_started first,
   iterations before loop_finished, nothing after loop_finished), that
   the server's supervision events are sane (every job_requeued inside
   its restart budget, degraded_entered/exited strictly alternating —
   a trailing open entered is tolerated, a crashed daemon dies
   degraded), and that the trace ends with a metrics snapshot. *)

module Json = Obs.Json

let fail = ref false

let error fmt =
  fail := true;
  Printf.eprintf "trace_check: ";
  Printf.kfprintf (fun oc -> output_char oc '\n') stderr fmt

type loop_state = {
  mutable started : int;
  mutable finished : int;
  mutable iterations : int;
  mutable counterexamples : int;
  mutable exhausted : bool;
      (* a budget_exhausted was seen for the current run of this loop *)
  mutable last_progress : int;
      (* highest iteration a progress record reported for the current
         run; -1 before the first one *)
}

let loops : (string, loop_state) Hashtbl.t = Hashtbl.create 8

let loop_state name =
  match Hashtbl.find_opt loops name with
  | Some st -> st
  | None ->
    let st =
      {
        started = 0;
        finished = 0;
        iterations = 0;
        counterexamples = 0;
        exhausted = false;
        last_progress = -1;
      }
    in
    Hashtbl.add loops name st;
    st

let known_events =
  [
    "loop_started"; "iteration"; "candidate"; "oracle_verdict";
    "counterexample"; "solver_call"; "certificate"; "progress";
    "stall_detected"; "budget_exhausted"; "loop_finished";
    "job_requeued"; "degraded_entered"; "degraded_exited";
  ]

(* daemon-lifetime events: they carry loop "server" but belong to no
   loop_started/loop_finished bracket *)
let server_events = [ "job_requeued"; "degraded_entered"; "degraded_exited" ]

let known_budget_reasons =
  [ "iterations"; "conflicts"; "deadline"; "solver"; "cancelled" ]

let str k r = Option.bind (Json.member k r) Json.to_str
let num k r = Option.bind (Json.member k r) Json.to_float
let int_field k r = Option.bind (Json.member k r) Json.to_int

(* float timestamps come through the JSON printer/parser round trip,
   so comparisons leave a little room *)
let eps = 1e-9

(* emission-order monotonicity: events and metrics are emitted at [t],
   spans at completion, i.e. [t + dur] *)
let last_emit = ref neg_infinity
let last_emit_line = ref 0

let check_emission lineno t =
  if t < !last_emit -. 1e-6 then
    error
      "line %d: emission time %.9f earlier than line %d's %.9f (trace not \
       in emission order)"
      lineno t !last_emit_line !last_emit;
  if t > !last_emit then begin
    last_emit := t;
    last_emit_line := lineno
  end

(* depth consistency: spans appear in completion order, children before
   parents, so completed spans wait on a pending list until a span one
   level up adopts every pending span inside its interval. Span depth is
   domain-local (each domain nests its own spans), so the pending lists
   are kept per [dom] field and nesting is checked within a domain. *)
type pending_span = {
  ps_line : int;
  ps_name : string;
  ps_depth : int;
  ps_start : float;
  ps_end : float;
}

let pending_by_dom : (int, pending_span list ref) Hashtbl.t = Hashtbl.create 4

let pending_spans_of dom =
  match Hashtbl.find_opt pending_by_dom dom with
  | Some l -> l
  | None ->
    let l = ref [] in
    Hashtbl.add pending_by_dom dom l;
    l

let check_span_depth lineno ~dom name depth t t_end =
  let pending_spans = pending_spans_of dom in
  if depth < 0 then error "line %d: span %S with negative depth" lineno name
  else begin
    let inside p = p.ps_start >= t -. eps && p.ps_end <= t_end +. eps in
    let adopted, rest =
      List.partition (fun p -> p.ps_depth = depth + 1 && inside p)
        !pending_spans
    in
    ignore adopted;
    List.iter
      (fun p ->
        if p.ps_depth > depth && inside p then
          error
            "line %d: span %S (depth %d) lies inside span %S (depth %d) but \
             is not its direct child — an intermediate span never completed"
            p.ps_line p.ps_name p.ps_depth name depth)
      rest;
    pending_spans :=
      { ps_line = lineno; ps_name = name; ps_depth = depth;
        ps_start = t; ps_end = t_end }
      :: List.filter (fun p -> not (p.ps_depth > depth && inside p)) rest
  end

let check_pending_at_eof () =
  Hashtbl.iter
    (fun _dom pending ->
      List.iter
        (fun p ->
          if p.ps_depth > 0 then
            error
              "line %d: span %S completed at depth %d but no enclosing span \
               completed around it"
              p.ps_line p.ps_name p.ps_depth)
        !pending)
    pending_by_dom

(* certificate pairing: a certificate is emitted at most once per Unsat
   solver verdict, directly after its solver_call record, so at every
   point of the trace the certificates seen cannot outnumber the unsat
   solver calls seen *)
let unsat_calls = ref 0
let certificates = ref 0

(* degraded-mode pairing: entered and exited strictly alternate *)
let degraded = ref false

let check_server_event lineno name r =
  let attr k f =
    Option.bind (Json.member "attrs" r) (fun a ->
        Option.bind (Json.member k a) f)
  in
  match name with
  | "job_requeued" -> (
    if attr "id" Json.to_str = None then
      error "line %d: job_requeued without a job id" lineno;
    match (attr "requeue" Json.to_int, attr "restart_budget" Json.to_int) with
    | None, _ -> error "line %d: job_requeued without a requeue count" lineno
    | _, None -> error "line %d: job_requeued without a restart_budget" lineno
    | Some rq, Some budget ->
      if rq < 1 then
        error "line %d: job_requeued with requeue %d (must be >= 1)" lineno rq;
      if rq > budget then
        error
          "line %d: job_requeued with requeue %d past its restart budget %d"
          lineno rq budget)
  | "degraded_entered" ->
    if !degraded then
      error "line %d: degraded_entered while already degraded" lineno;
    degraded := true;
    if attr "reason" Json.to_str = None then
      error "line %d: degraded_entered without a reason" lineno
  | "degraded_exited" ->
    if not !degraded then
      error "line %d: degraded_exited without a degraded_entered" lineno;
    degraded := false
  | _ -> ()

let check_event lineno r =
  match (str "name" r, str "loop" r) with
  | None, _ -> error "line %d: event without a name" lineno
  | Some name, _ when not (List.mem name known_events) ->
    error "line %d: unknown event %S" lineno name
  | _, None -> error "line %d: event without a loop field" lineno
  | Some name, Some loop ->
    (* solver_call and certificate may carry an empty loop: portfolio
       members run in worker domains outside any loop scope *)
    if loop = "" && name <> "solver_call" && name <> "certificate" then
      error "line %d: %s event with an empty loop name" lineno name;
    let global_attr_int k =
      Option.bind (Json.member "attrs" r) (fun a ->
          Option.bind (Json.member k a) Json.to_int)
    in
    (match name with
    | "solver_call" ->
      (match
         Option.bind (Json.member "attrs" r) (fun a ->
             Option.bind (Json.member "result" a) Json.to_str)
       with
      | Some "unsat" -> incr unsat_calls
      | _ -> ())
    | "certificate" -> begin
      incr certificates;
      if !certificates > !unsat_calls then
        error
          "line %d: certificate without a preceding unsat solver_call (%d \
           certificates, %d unsat verdicts so far)"
          lineno !certificates !unsat_calls;
      (match global_attr_int "proof_bytes" with
      | None -> error "line %d: certificate without proof_bytes" lineno
      | Some b when b < 0 ->
        error "line %d: certificate with negative proof_bytes" lineno
      | Some _ -> ());
      match global_attr_int "core_size" with
      | None -> error "line %d: certificate without core_size" lineno
      | Some c when c < 0 ->
        error "line %d: certificate with negative core_size" lineno
      | Some _ -> ()
    end
    | _ -> ());
    if List.mem name server_events then check_server_event lineno name r
    else if loop <> "" then begin
      let st = loop_state loop in
      (match name with
      | "loop_started" ->
        st.started <- st.started + 1;
        st.exhausted <- false;
        st.last_progress <- -1
      | _ when st.started = 0 ->
        error "line %d: %s for loop %S before loop_started" lineno name loop
      | _ -> ());
      (match name with
      | "loop_finished" -> st.finished <- st.finished + 1
      | _ when st.finished >= st.started ->
        error "line %d: %s for loop %S after loop_finished" lineno name loop
      | _ -> ());
      (* budget_exhausted is terminal: the loop may report nothing after
         it except its loop_finished *)
      (match name with
      | "loop_finished" | "loop_started" -> ()
      | _ when st.exhausted ->
        error "line %d: %s for loop %S after budget_exhausted" lineno name
          loop
      | _ -> ());
      (match name with
      | "budget_exhausted" -> begin
        st.exhausted <- true;
        match
          Option.bind (Json.member "attrs" r) (fun a ->
              Option.bind (Json.member "reason" a) Json.to_str)
        with
        | None ->
          error "line %d: budget_exhausted for loop %S without a reason"
            lineno loop
        | Some reason when not (List.mem reason known_budget_reasons) ->
          error "line %d: budget_exhausted for loop %S with unknown reason %S"
            lineno loop reason
        | Some _ -> ()
      end
      | _ -> ());
      let attr_int k =
        Option.bind (Json.member "attrs" r) (fun a ->
            Option.bind (Json.member k a) Json.to_int)
      in
      (* progress reports the max iteration reached so far, so the
         sequence must be non-decreasing within a run *)
      (match name with
      | "progress" -> (
        match attr_int "iteration" with
        | None ->
          error "line %d: progress for loop %S without an iteration" lineno
            loop
        | Some i ->
          if i < st.last_progress then
            error
              "line %d: progress for loop %S went backwards (%d after %d)"
              lineno loop i st.last_progress;
          st.last_progress <- max st.last_progress i)
      | "stall_detected" ->
        if attr_int "iteration" = None then
          error "line %d: stall_detected for loop %S without an iteration"
            lineno loop;
        (match
           Option.bind (Json.member "attrs" r) (fun a ->
               Option.bind (Json.member "seconds_stalled" a) Json.to_float)
         with
        | None ->
          error
            "line %d: stall_detected for loop %S without seconds_stalled"
            lineno loop
        | Some s when s <= 0.0 ->
          error
            "line %d: stall_detected for loop %S with non-positive \
             seconds_stalled"
            lineno loop
        | Some _ -> ())
      | _ -> ());
      match name with
      | "iteration" -> st.iterations <- st.iterations + 1
      | "counterexample" -> st.counterexamples <- st.counterexamples + 1
      | _ -> ()
    end

(* validates one record and returns its kind *)
let check_record lineno r =
  let t =
    match num "t" r with
    | None ->
      error "line %d: record without a timestamp" lineno;
      None
    | Some t ->
      if t < 0.0 then error "line %d: negative timestamp" lineno;
      Some t
  in
  match str "kind" r with
  | Some "span" ->
    let name =
      match str "name" r with
      | Some n -> n
      | None ->
        error "line %d: span without a name" lineno;
        "?"
    in
    let dur =
      match num "dur" r with
      | None ->
        error "line %d: span without a duration" lineno;
        None
      | Some d ->
        if d < 0.0 then error "line %d: negative duration" lineno;
        Some d
    in
    (match (t, dur) with
    | Some t, Some dur when t >= 0.0 && dur >= 0.0 ->
      check_emission lineno (t +. dur);
      (* traces predating the dom field are all single-domain *)
      let dom = Option.value (int_field "dom" r) ~default:0 in
      (match int_field "depth" r with
      | None -> error "line %d: span without a depth" lineno
      | Some depth -> check_span_depth lineno ~dom name depth t (t +. dur))
    | _ -> ());
    "span"
  | Some "event" ->
    Option.iter (check_emission lineno) t;
    check_event lineno r;
    "event"
  | Some "metrics" ->
    Option.iter (check_emission lineno) t;
    if Json.member "metrics" r = None then
      error "line %d: metrics record without a snapshot" lineno;
    "metrics"
  | _ ->
    error "line %d: unknown record kind" lineno;
    ""

let () =
  let path = ref None in
  let required = ref [] in
  let rec parse = function
    | [] -> ()
    | "--require-loop" :: name :: rest ->
      required := name :: !required;
      parse rest
    | "--require-loop" :: [] ->
      prerr_endline "trace_check: --require-loop needs an argument";
      exit 2
    | arg :: rest ->
      (match !path with
      | None -> path := Some arg
      | Some _ ->
        prerr_endline "trace_check: exactly one trace file expected";
        exit 2);
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let path =
    match !path with
    | Some p -> p
    | None ->
      prerr_endline "usage: trace_check TRACE.jsonl [--require-loop NAME]...";
      exit 2
  in
  let ic =
    try open_in path
    with Sys_error msg ->
      prerr_endline ("trace_check: " ^ msg);
      exit 2
  in
  let lineno = ref 0 in
  let records = ref 0 in
  let last_kind = ref "" in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       if String.trim line <> "" then begin
         match Json.parse line with
         | Error msg -> error "line %d: %s" !lineno msg
         | Ok r ->
           incr records;
           last_kind := check_record !lineno r
       end
     done
   with End_of_file -> ());
  close_in ic;
  if !records = 0 then error "empty trace";
  if !last_kind <> "metrics" then
    error "trace does not end with a metrics snapshot (got %S)" !last_kind;
  check_pending_at_eof ();
  Hashtbl.iter
    (fun name st ->
      if st.finished > st.started then
        error "loop %S: %d loop_finished but only %d loop_started" name
          st.finished st.started)
    loops;
  List.iter
    (fun name ->
      match Hashtbl.find_opt loops name with
      | None -> error "required loop %S absent from the trace" name
      | Some st ->
        if st.finished = 0 then error "required loop %S never finished" name;
        if st.iterations = 0 then
          error "required loop %S has no iterations" name)
    !required;
  if !fail then exit 1
  else begin
    Printf.printf "trace_check: %s ok (%d records" path !records;
    Hashtbl.iter
      (fun name st ->
        Printf.printf "; %s: %d iterations, %d cexes" name st.iterations
          st.counterexamples)
      loops;
    print_endline ")"
  end
