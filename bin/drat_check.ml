(* drat_check CNF PROOF — standalone DRAT (RUP) proof checker.

   Exit status: 0 proof verified, 1 proof rejected, 2 usage/IO error.
   Kept free of every solver library on purpose: this binary is the
   independent auditor for certificates produced under --proof. *)

let usage () =
  prerr_endline "usage: drat_check CNF_FILE DRAT_FILE";
  prerr_endline "  verifies that DRAT_FILE derives the empty clause from CNF_FILE";
  exit 2

let () =
  match Sys.argv with
  | [| _; cnf; proof |] -> (
    match Cert.Drat.check_files ~cnf ~proof with
    | Ok s ->
      Printf.printf
        "VERIFIED %s by %s: %d cnf clauses, %d additions, %d deletions, %d \
         propagations\n"
        cnf proof s.Cert.Drat.cnf_clauses s.Cert.Drat.additions
        s.Cert.Drat.deletions s.Cert.Drat.propagations;
      exit 0
    | Error e ->
      Printf.printf "REJECTED %s by %s: %s\n" cnf proof e;
      exit 1)
  | _ -> usage ()
