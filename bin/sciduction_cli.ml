(* Command-line interface over the sciduction applications.

     sciduction_cli deobfuscate --program p2 --width 8
     sciduction_cli timing --bits 6 --tau 550
     sciduction_cli transmission --dwell 5
     sciduction_cli cegar --junk 10
     sciduction_cli bmc --junk 10 --max-depth 12
     sciduction_cli invgen --circuit mod5
     sciduction_cli lstar --states 5
     sciduction_cli table
     sciduction_cli export-chrome trace.jsonl -o trace.json
     sciduction_cli report trace.jsonl --baseline summary.json

   Every application subcommand accepts --trace FILE (JSON-lines
   telemetry), --stats (console summary on exit), --quiet (suppress
   diagnostics, keep the final verdict), --jobs N (worker domains
   for the parallel fan-outs; defaults to SCIDUCTION_JOBS or 1) and
   --stats-socket PATH (serve live metrics, rates and heartbeat/stall
   status over a Unix-domain socket while the run is in flight; scrape
   it with `sciduction_cli stats --socket PATH` from another shell).

   Loop subcommands additionally accept resource governance flags:
   --timeout SECONDS and --max-conflicts N budget the run (an exhausted
   run reports its partial result and exits 0), and --fault SEED[:PROB]
   arms deterministic fault injection (also via SCIDUCTION_FAULT_SEED;
   the flag wins). *)

open Cmdliner

(* ---- telemetry plumbing shared by all subcommands ---- *)

let obs_term =
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Write a JSON-lines telemetry trace (spans, loop events, \
                final metrics snapshot) to $(docv).")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Print a telemetry summary (per-loop timings, hottest spans, \
                solver metrics) on exit.")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "quiet" ] ~doc:"Suppress diagnostics; keep final verdicts.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Worker domains for parallel fan-out (portfolio SAT, BMC \
                depth sweep, candidate re-checking). Default: \
                $(b,SCIDUCTION_JOBS) or 1; 1 keeps everything sequential.")
  in
  let stats_socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-socket" ] ~docv:"PATH"
          ~env:(Cmd.Env.info "SCIDUCTION_STATS_SOCKET")
          ~doc:"Serve live telemetry (metrics snapshots, per-interval \
                rates, loop heartbeats, stall status) on a Unix-domain \
                socket at $(docv) for the duration of the run; scrape it \
                with $(b,sciduction_cli stats). Implies telemetry is on.")
  in
  let stall_after =
    Arg.(
      value & opt float 5.0
      & info [ "stall-after" ] ~docv:"SECONDS"
          ~doc:"With --stats-socket: flag a loop as stalled once no \
                iteration has advanced for $(docv) seconds (a diagnostic \
                stall_detected event and endpoint status; the run is never \
                killed).")
  in
  let proof =
    Arg.(
      value
      & opt (some string) None
      & info [ "proof" ] ~docv:"PREFIX"
          ~doc:"Log DRAT proofs and unsat-core certificates: spool files \
                $(docv).sN.cnf / $(docv).sN.drat plus a $(docv).idx index, \
                one certificate per Unsat verdict. Audit them afterwards \
                with $(b,sciduction_cli check-proof --proof) $(docv).")
  in
  Term.(
    const (fun t s q j sock stall proof -> (t, s, q, j, sock, stall, proof))
    $ trace $ stats $ quiet $ jobs $ stats_socket $ stall_after $ proof)

(* ---- resource governance shared by the loop subcommands ---- *)

let positive_int_conv what =
  let parse s =
    match int_of_string_opt s with
    | Some n when n > 0 -> Ok n
    | Some _ -> Error (`Msg (Printf.sprintf "%s must be positive" what))
    | None -> Error (`Msg (Printf.sprintf "expected a positive integer, got %S" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let fault_conv =
  let parse s =
    match Fault.parse_spec s with Ok v -> Ok v | Error m -> Error (`Msg m)
  in
  let print fmt (seed, prob) =
    match prob with
    | None -> Format.fprintf fmt "%d" seed
    | Some p -> Format.fprintf fmt "%d:%g" seed p
  in
  Arg.conv (parse, print)

let fault_arg =
  Arg.(
    value
    & opt (some fault_conv) None
    & info [ "fault" ] ~docv:"SEED[:PROB]"
        ~doc:"Arm deterministic fault injection: solver calls spuriously \
              answer Unknown, pool submissions die, served jobs abort, \
              server readers and dispatchers crash and journal appends \
              fail, with per-site probability $(i,PROB) (default 0.05). \
              Overrides $(b,SCIDUCTION_FAULT_SEED).")

let fault_sites_conv =
  let parse s =
    match Fault.parse_sites s with Ok l -> Ok l | Error m -> Error (`Msg m)
  in
  let print fmt l =
    Format.pp_print_string fmt
      (String.concat "," (List.map Fault.site_to_string l))
  in
  Arg.conv (parse, print)

let fault_sites_arg =
  Arg.(
    value
    & opt (some fault_sites_conv) None
    & info [ "fault-sites" ] ~docv:"SITES"
        ~doc:"Restrict $(b,--fault) to a comma-separated subset of sites \
              (solver_call, pool_submit, domain_spawn, serve_job, \
              serve_reader, serve_dispatch, journal_write); the others \
              never fire and consume no draws. Default: every site. \
              Overrides $(b,SCIDUCTION_FAULT_SITES).")

let arm_fault ?sites = function
  | Some (seed, prob) -> Fault.activate ?probability:prob ?sites ~seed ()
  | None -> ignore (Fault.activate_from_env () : bool)

let budget_term =
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Wall-clock budget for the whole run. On expiry the loop \
                stops at the next solver poll and reports its partial \
                result.")
  in
  let max_conflicts =
    Arg.(
      value
      & opt (some (positive_int_conv "--max-conflicts")) None
      & info [ "max-conflicts" ] ~docv:"N"
          ~doc:"Pooled SAT-conflict budget shared by every solver call of \
                the run (deterministic: the same run exhausts at the same \
                point every time).")
  in
  Term.(
    const (fun timeout conflicts fault sites ->
        arm_fault ?sites fault;
        Budget.limited ?conflicts ?seconds:timeout ())
    $ timeout $ max_conflicts $ fault_arg $ fault_sites_arg)

(* [f] receives the pool ([None] when --jobs resolves to 1): verdicts do
   not depend on it, only wall-clock time does *)
let with_obs (trace, stats, quiet, jobs, stats_socket, stall_after, proof) f =
  Obs.set_quiet quiet;
  if trace <> None || stats || stats_socket <> None then begin
    Obs.enable ();
    Option.iter (fun path -> Obs.add_sink (Obs.jsonl_sink path)) trace
  end;
  Option.iter (fun prefix -> Smt.Proof.enable ~prefix) proof;
  (* the live plane exists only when asked for: without --stats-socket
     no ticker domain starts, no progress records appear, and the run
     is byte-for-byte what it was before the plane existed *)
  let live =
    match stats_socket with
    | None -> Ok None
    | Some path -> (
      Obs.set_progress_interval 0.25;
      let ticker =
        Obs.Live.start ~interval_ms:250
          ~on_tick:(fun () -> Obs.check_stalls ~window:stall_after)
          ()
      in
      match Obs.Statsd.start ~path ~ticker () with
      | Ok server -> Ok (Some (ticker, server))
      | Error msg ->
        Obs.Live.stop ticker;
        Error msg)
  in
  match live with
  | Error msg ->
    Smt.Proof.disable ();
    Obs.shutdown ();
    Format.eprintf "sciduction_cli: %s@." msg;
    3
  | Ok live ->
  let code =
    Fun.protect
      ~finally:(fun () ->
        (* server first (it reads the ticker), then the ticker, then the
           sinks; the socket file is gone before the process exits *)
        Option.iter
          (fun (ticker, server) ->
            Obs.Statsd.stop server;
            Obs.Live.stop ticker)
          live;
        Smt.Proof.disable ();
        Obs.shutdown ())
      (fun () ->
        (* typed failures become a one-line diagnostic and a distinct
           exit code, never a backtrace; jobs validation lives inside so
           --jobs 0 or a mistyped SCIDUCTION_JOBS gets the same
           treatment as any other bad input *)
        try
          let jobs =
            match jobs with
            | Some j ->
              if j < 1 then
                failwith
                  (Printf.sprintf "--jobs: jobs must be >= 1 (got %d)" j);
              j
            | None -> Par.env_jobs_exn ~default:1 ()
          in
          let pool =
            if jobs > 1 then Some (Par.Pool.create ~jobs ()) else None
          in
          Fun.protect
            ~finally:(fun () -> Option.iter Par.Pool.shutdown pool)
            (fun () -> f pool)
        with
        | Failure msg ->
          Format.eprintf "sciduction_cli: %s@." msg;
          3
        | Invalid_argument msg ->
          Format.eprintf "sciduction_cli: %s@." msg;
          3
        | Sys_error msg ->
          Format.eprintf "sciduction_cli: %s@." msg;
          3)
  in
  (* stderr, so --stats composes with piping the verdict from stdout *)
  if stats then Format.eprintf "%a@." Obs.pp_summary ();
  code

(* ---- the six loop subcommands ----

   Each one builds a Server.Jobs.spec from its flags and either runs it
   in-process (through the exact runner the daemon's dispatchers use,
   so verdicts cannot drift between the two front-ends) or, with
   --server PATH, submits it to a running daemon and relays the verdict
   and exit code unchanged. *)

let server_retries_arg =
  Arg.(
    value
    & opt (some (positive_int_conv "--server-retries")) None
    & info [ "server-retries" ] ~docv:"N"
        ~doc:"With $(b,--server): total submit attempts. Transport \
              failures (daemon restarting) and transient typed errors \
              (overloaded, internal_error) are retried under jittered \
              exponential backoff, honoring the server's retry_after_s \
              hint. Default 5; 1 disables retrying.")

let server_term =
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "server" ] ~docv:"PATH"
          ~env:(Cmd.Env.info "SCIDUCTION_SERVER")
          ~doc:"Submit the job to the verification server listening on the \
                Unix socket $(docv) (see $(b,sciduction_cli serve)) instead \
                of solving in-process. The verdict text and exit code come \
                back unchanged; --timeout and --max-conflicts become the \
                job's server-side budget.")
  in
  Term.(
    const (fun socket retries -> Option.map (fun s -> (s, retries)) socket)
    $ socket $ server_retries_arg)

let print_verdict verdict =
  List.iter print_endline (String.split_on_char '\n' verdict)

let submit_and_print socket ?attempts ?id ?priority ?timeout ?max_conflicts
    spec =
  let retry =
    match attempts with
    | None -> Server.Client.default_retry
    | Some attempts -> { Server.Client.default_retry with attempts }
  in
  match
    Server.Client.submit ~socket ~retry ?id ?priority ?timeout ?max_conflicts
      spec
  with
  | Ok o ->
    print_verdict o.Server.Client.verdict;
    o.Server.Client.code
  | Error (`Server f) ->
    Format.eprintf "sciduction_cli: server error %s: %s@." f.Server.Client.fcode
      f.Server.Client.fmessage;
    3
  | Error (`Transport msg) ->
    Format.eprintf "sciduction_cli: %s@." msg;
    3

let run_spec server pool (budget : Budget.t) spec =
  match server with
  | Some (socket, attempts) ->
    submit_and_print socket ?attempts ?timeout:budget.Budget.seconds
      ?max_conflicts:budget.Budget.conflicts spec
  | None ->
    let r = Server.Jobs.run ?pool ~budget spec in
    print_verdict r.Server.Jobs.verdict;
    r.Server.Jobs.code

(* ---- deobfuscate ---- *)

let deobfuscate_cmd =
  let program =
    Arg.(
      value
      & opt (enum [ ("p1", `P1); ("p2", `P2) ]) `P2
      & info [ "program" ] ~docv:"NAME" ~doc:"Benchmark to deobfuscate: p1 or p2.")
  in
  let width =
    Arg.(value & opt int 8 & info [ "width" ] ~docv:"BITS" ~doc:"Word width.")
  in
  Cmd.v
    (Cmd.info "deobfuscate" ~doc:"Re-synthesize an obfuscated program (Fig. 8)")
    Term.(
      const (fun obs budget server program width ->
          with_obs obs (fun pool ->
              run_spec server pool budget
                (Server.Jobs.Deobfuscate { program; width })))
      $ obs_term $ budget_term $ server_term $ program $ width)

(* ---- timing ---- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let timing_cmd =
  let file =
    Arg.(
      value
      & opt (some file) None
      & info [ "file" ] ~docv:"FILE"
          ~doc:"Analyze this program instead of the built-in modexp.")
  in
  let bits =
    Arg.(
      value & opt int 6
      & info [ "bits" ] ~docv:"N"
          ~doc:"Exponent bits for modexp / loop-unrolling bound for --file.")
  in
  let tau =
    Arg.(
      value
      & opt (some int) None
      & info [ "tau" ] ~docv:"CYCLES" ~doc:"Answer problem <TA> for this bound.")
  in
  Cmd.v
    (Cmd.info "timing" ~doc:"GameTime analysis of a program (Sec. 3)")
    Term.(
      const (fun obs budget server file bits tau ->
          with_obs obs (fun pool ->
              let source = Option.map read_file file in
              run_spec server pool budget
                (Server.Jobs.Timing { source; bits; tau })))
      $ obs_term $ budget_term $ server_term $ file $ bits $ tau)

(* ---- transmission ---- *)

let transmission_run dwell grid =
  let r =
    if dwell > 0.0 then Switchsynth.Transmission_synth.synthesize ~dwell ~grid ()
    else Switchsynth.Transmission_synth.synthesize ~grid ()
  in
  Format.printf "converged=%b after %d iterations (%d simulator queries)@."
    r.Switchsynth.Fixpoint.converged r.Switchsynth.Fixpoint.iterations
    r.Switchsynth.Fixpoint.labels_queried;
  List.iter
    (fun (label, b) ->
      Obs.info "  %-6s %a@." label Switchsynth.Box.pp1 b)
    r.Switchsynth.Fixpoint.guards;
  0

let transmission_cmd =
  let dwell =
    Arg.(
      value & opt float 0.0
      & info [ "dwell" ] ~docv:"SECONDS" ~doc:"Minimum dwell per gear (0 = Eq. 3).")
  in
  let grid =
    Arg.(value & opt float 0.01 & info [ "grid" ] ~docv:"STEP" ~doc:"Guard grid.")
  in
  Cmd.v
    (Cmd.info "transmission"
       ~doc:"Synthesize transmission switching guards (Sec. 5)")
    Term.(
      const (fun obs dwell grid ->
          with_obs obs (fun _pool -> transmission_run dwell grid))
      $ obs_term $ dwell $ grid)

(* ---- cegar ---- *)

let cegar_cmd =
  let junk =
    Arg.(value & opt int 8 & info [ "junk" ] ~doc:"Irrelevant latches.")
  in
  let bits = Arg.(value & opt int 3 & info [ "bits" ] ~doc:"Counter width.") in
  let modulus = Arg.(value & opt int 6 & info [ "modulus" ] ~doc:"Wrap value.") in
  let bad_value =
    Arg.(value & opt int 7 & info [ "bad" ] ~doc:"Bad counter value.")
  in
  Cmd.v
    (Cmd.info "cegar" ~doc:"CEGAR on a counter with irrelevant latches")
    Term.(
      const (fun obs budget server junk bits modulus bad_value ->
          with_obs obs (fun pool ->
              run_spec server pool budget
                (Server.Jobs.Cegar { junk; bits; modulus; bad_value })))
      $ obs_term $ budget_term $ server_term $ junk $ bits $ modulus
      $ bad_value)

(* ---- bmc ---- *)

let bmc_cmd =
  let junk =
    Arg.(value & opt int 8 & info [ "junk" ] ~doc:"Irrelevant latches.")
  in
  let bits = Arg.(value & opt int 3 & info [ "bits" ] ~doc:"Counter width.") in
  let modulus = Arg.(value & opt int 6 & info [ "modulus" ] ~doc:"Wrap value.") in
  let bad_value =
    Arg.(value & opt int 7 & info [ "bad" ] ~doc:"Bad counter value.")
  in
  let max_depth =
    Arg.(
      value & opt int 16
      & info [ "max-depth" ] ~docv:"N" ~doc:"Largest unrolling depth to try.")
  in
  let shift =
    Arg.(
      value
      & opt (some (positive_int_conv "--shift")) None
      & info [ "shift" ] ~docv:"LEN"
          ~doc:"Check a $(docv)-stage shift register instead of the counter \
                (safe: the bad state is unreachable at every depth).")
  in
  Cmd.v
    (Cmd.info "bmc" ~doc:"Bounded model checking sweep over growing depths")
    Term.(
      const (fun obs budget server shift junk bits modulus bad_value max_depth ->
          with_obs obs (fun pool ->
              run_spec server pool budget
                (Server.Jobs.Bmc
                   {
                     system = { shift; junk; bits; modulus; bad_value };
                     max_depth;
                   })))
      $ obs_term $ budget_term $ server_term $ shift $ junk $ bits $ modulus
      $ bad_value $ max_depth)

(* ---- invgen ---- *)

let invgen_cmd =
  let circuit =
    Arg.(
      value
      & opt
          (enum
             [ ("ring", `Ring); ("mod5", `Mod5); ("twin", `Twin);
               ("stuck", `Stuck) ])
          `Mod5
      & info [ "circuit" ] ~docv:"NAME"
          ~doc:"Example circuit: ring, mod5, twin or stuck.")
  in
  let n =
    Arg.(
      value & opt int 4
      & info [ "n" ] ~docv:"N" ~doc:"Size parameter for ring/twin.")
  in
  Cmd.v
    (Cmd.info "invgen"
       ~doc:"Invariant generation by simulation + mutual induction (Sec. 2.4)")
    Term.(
      const (fun obs budget server circuit n ->
          with_obs obs (fun pool ->
              run_spec server pool budget (Server.Jobs.Invgen { circuit; n })))
      $ obs_term $ budget_term $ server_term $ circuit $ n)

(* ---- lstar ---- *)

let lstar_cmd =
  let states =
    Arg.(
      value
      & opt (positive_int_conv "--states") 5
      & info [ "states" ] ~docv:"N"
          ~doc:"States of the target DFA (1s-count mod $(docv)).")
  in
  Cmd.v
    (Cmd.info "lstar" ~doc:"Learn a DFA with Angluin's L* algorithm")
    Term.(
      const (fun obs budget server states ->
          with_obs obs (fun pool ->
              run_spec server pool budget (Server.Jobs.Lstar { states })))
      $ obs_term $ budget_term $ server_term $ states)

(* ---- export-chrome ---- *)

let export_chrome_run input output =
  let output =
    match output with
    | Some o -> o
    | None -> Filename.remove_extension input ^ ".chrome.json"
  in
  match Obs.export_chrome ~input ~output with
  | Ok () ->
    Format.printf "wrote %s@." output;
    0
  | Error msg ->
    Format.eprintf "export failed: %s@." msg;
    1

let export_chrome_cmd =
  let input =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE" ~doc:"JSON-lines trace produced by --trace.")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Output path (default: TRACE with a .chrome.json extension).")
  in
  Cmd.v
    (Cmd.info "export-chrome"
       ~doc:"Convert a JSONL trace to Chrome trace_event format")
    Term.(const export_chrome_run $ input $ output)

(* ---- report ---- *)

let report_run input json top against baseline seconds conflicts propagations
    iterations solves min_seconds =
  let d = Obs.Analyze.default_thresholds in
  let pick v dflt = Option.value v ~default:dflt in
  let thresholds =
    {
      Obs.Analyze.seconds = pick seconds d.Obs.Analyze.seconds;
      conflicts = pick conflicts d.Obs.Analyze.conflicts;
      propagations = pick propagations d.Obs.Analyze.propagations;
      iterations = pick iterations d.Obs.Analyze.iterations;
      solves = pick solves d.Obs.Analyze.solves;
      min_seconds = pick min_seconds d.Obs.Analyze.min_seconds;
    }
  in
  match
    Obs.Analyze.run_report ~top ~json ?against ?baseline ~thresholds input
  with
  | Ok code -> code
  | Error msg ->
    Format.eprintf "report failed: %s@." msg;
    2

let report_cmd =
  let input =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE" ~doc:"JSON-lines trace produced by --trace.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the machine-readable summary instead of \
                              the human report.")
  in
  let top =
    Arg.(
      value & opt int 12
      & info [ "top" ] ~docv:"N" ~doc:"Flame-profile paths to show.")
  in
  let against =
    Arg.(
      value
      & opt (some file) None
      & info [ "against" ] ~docv:"TRACE2"
          ~doc:"Diff this trace against $(docv) and report regressions.")
  in
  let baseline =
    Arg.(
      value
      & opt (some file) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:"Diff against a saved JSON baseline (a --json summary or a \
                BENCH-style document).")
  in
  let ratio names doc =
    Arg.(value & opt (some float) None & info names ~docv:"RATIO" ~doc)
  in
  let seconds =
    ratio [ "max-seconds-ratio" ] "Allowed current/baseline timing ratio."
  in
  let conflicts =
    ratio [ "max-conflicts-ratio" ] "Allowed solver-conflicts ratio."
  in
  let propagations =
    ratio [ "max-propagations-ratio" ] "Allowed solver-propagations ratio."
  in
  let iterations =
    ratio [ "max-iterations-ratio" ] "Allowed loop-iterations ratio."
  in
  let solves = ratio [ "max-solves-ratio" ] "Allowed solver-calls ratio." in
  let min_seconds =
    Arg.(
      value
      & opt (some float) None
      & info [ "min-seconds" ] ~docv:"S"
          ~doc:"Ignore timing pairs where both sides are under $(docv).")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Analyze a JSONL trace: convergence diagnostics, flame profile, \
             regression diff")
    Term.(
      const report_run $ input $ json $ top $ against $ baseline $ seconds
      $ conflicts $ propagations $ iterations $ solves $ min_seconds)

(* ---- run ---- *)

let parse_binding s =
  match String.index_opt s '=' with
  | Some i ->
    let name = String.sub s 0 i in
    let v = String.sub s (i + 1) (String.length s - i - 1) in
    (match int_of_string_opt v with
    | Some v -> Ok (name, v)
    | None -> Error (`Msg (Printf.sprintf "bad value in %S" s)))
  | None -> Error (`Msg (Printf.sprintf "expected NAME=VALUE, got %S" s))

let binding_conv =
  Arg.conv (parse_binding, fun fmt (n, v) -> Format.fprintf fmt "%s=%d" n v)

let run_run file bindings machine =
  match Prog.Syntax.parse_file file with
  | exception Prog.Syntax.Parse_error { line; message } ->
    Format.eprintf "%s:%d: %s@." file line message;
    2
  | p ->
    Obs.info "%a@.@." Prog.Syntax.print p;
    let outputs = Prog.Interp.run p bindings in
    List.iter (fun (x, v) -> Format.printf "%s = %d@." x v) outputs;
    if machine then begin
      let pf = Microarch.Platform.create p in
      let r = Microarch.Platform.run pf bindings in
      Format.printf
        "machine: %d cycles, %d instructions, icache %d/%d, dcache %d/%d@."
        r.Microarch.Machine.stats.Microarch.Machine.cycles
        r.Microarch.Machine.stats.Microarch.Machine.instructions
        r.Microarch.Machine.stats.Microarch.Machine.icache_hits
        r.Microarch.Machine.stats.Microarch.Machine.icache_misses
        r.Microarch.Machine.stats.Microarch.Machine.dcache_hits
        r.Microarch.Machine.stats.Microarch.Machine.dcache_misses;
      if r.Microarch.Machine.outputs <> outputs then begin
        Format.printf "!! machine disagrees with the interpreter@.";
        exit 1
      end
    end;
    0

let run_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Program source (.imp).")
  in
  let bindings =
    Arg.(
      value & opt_all binding_conv []
      & info [ "in" ] ~docv:"NAME=VALUE" ~doc:"Input binding (repeatable).")
  in
  let machine =
    Arg.(
      value & flag
      & info [ "machine" ]
          ~doc:"Also execute on the cycle-accurate platform and report timing.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Parse and execute a program file")
    Term.(
      const (fun obs file bindings machine ->
          with_obs obs (fun _pool -> run_run file bindings machine))
      $ obs_term $ file $ bindings $ machine)

(* ---- stats (scrape a live run's endpoint) ---- *)

let stats_run socket metrics =
  match socket with
  | None ->
    Format.eprintf
      "sciduction_cli: no socket (pass --socket PATH, or set \
       SCIDUCTION_STATS_SOCKET)@.";
    3
  | Some path -> (
    let target = if metrics then "/metrics" else "/json" in
    match Obs.Statsd.fetch ~path ~target () with
    | Ok body ->
      print_string body;
      0
    | Error msg ->
      Format.eprintf "sciduction_cli: %s@." msg;
      3)

let stats_cmd =
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~env:(Cmd.Env.info "SCIDUCTION_STATS_SOCKET")
          ~doc:"Stats socket of the run to scrape (the path the run was \
                given via --stats-socket).")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Print the Prometheus text exposition ($(i,/metrics)) \
                instead of the JSON document ($(i,/json)).")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Scrape the live stats endpoint of a running sciduction_cli")
    Term.(const stats_run $ socket $ metrics)

(* ---- check-proof ---- *)

let m_clauses_checked = Obs.Metrics.counter "cert.clauses_checked"
let m_check_ms = Obs.Metrics.histogram "cert.check_ms"

let read_prefix path n =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  if len < n then begin
    close_in_noerr ic;
    failwith
      (Printf.sprintf "%s: certificate wants %d bytes but the spool has %d"
         path n len)
  end;
  let s = really_input_string ic n in
  close_in ic;
  s

(* Rebuild one certificate's self-contained (CNF, DRAT) pair from its
   index entry: the CNF is the spool prefix plus one unit clause per
   core literal (the failed assumptions, asserted); the DRAT is the
   spool prefix (whose last clause is the negated core, appended at
   certify time) terminated by the empty clause the spool deliberately
   omits. *)
let reconstruct_pair entry =
  let str k = Option.bind (Obs.Json.member k entry) Obs.Json.to_str in
  let int_f k = Option.bind (Obs.Json.member k entry) Obs.Json.to_int in
  let ints k =
    match Obs.Json.member k entry with
    | Some (Obs.Json.List l) -> List.filter_map Obs.Json.to_int l
    | _ -> []
  in
  let strs k =
    match Obs.Json.member k entry with
    | Some (Obs.Json.List l) -> List.filter_map Obs.Json.to_str l
    | _ -> []
  in
  match (str "cnf", int_f "cnf_bytes", str "drat", int_f "drat_bytes") with
  | Some cnf, Some cnf_bytes, Some drat, Some drat_bytes ->
    let core = ints "core" in
    let b = Buffer.create (cnf_bytes + (8 * List.length core) + 64) in
    Buffer.add_string b
      (Printf.sprintf "p cnf %d %d\n"
         (Option.value ~default:0 (int_f "maxvar"))
         (Option.value ~default:0 (int_f "cnf_clauses") + List.length core));
    Buffer.add_string b (read_prefix cnf cnf_bytes);
    List.iter (fun l -> Buffer.add_string b (Printf.sprintf "%d 0\n" l)) core;
    let cnf_text = Buffer.contents b in
    let drat_text = read_prefix drat drat_bytes ^ "0\n" in
    Ok
      ( Option.value ~default:(-1) (int_f "cert"),
        Option.value ~default:"" (str "loop"),
        strs "names",
        cnf_text,
        drat_text )
  | _ -> Error "index entry is missing a cnf/drat field"

let check_proof_run prefix dump =
  match Smt.Proof.read_index ~prefix with
  | Error msg ->
    Format.eprintf "sciduction_cli: %s@." msg;
    2
  | Ok [] ->
    Format.printf "no certificates in %s.idx@." prefix;
    0
  | Ok entries ->
    Option.iter
      (fun dir -> if not (Sys.file_exists dir) then Sys.mkdir dir 0o755)
      dump;
    let failed = ref 0 in
    List.iter
      (fun entry ->
        match reconstruct_pair entry with
        | Error msg ->
          incr failed;
          Format.printf "BAD INDEX ENTRY: %s@." msg
        | exception Failure msg ->
          incr failed;
          Format.printf "BAD CERTIFICATE: %s@." msg
        | Ok (id, loop, names, cnf_text, drat_text) -> (
          Option.iter
            (fun dir ->
              let write path text =
                let oc = open_out (Filename.concat dir path) in
                output_string oc text;
                close_out oc
              in
              write (Printf.sprintf "cert%d.cnf" id) cnf_text;
              write (Printf.sprintf "cert%d.drat" id) drat_text)
            dump;
          let t0 = Unix.gettimeofday () in
          let verdict =
            match Cert.Drat.parse_dimacs cnf_text with
            | Error e -> Error e
            | Ok f -> (
              match Cert.Drat.parse_proof drat_text with
              | Error e -> Error e
              | Ok p -> Cert.Drat.check f p)
          in
          let ms =
            int_of_float (1000.0 *. (Unix.gettimeofday () -. t0))
          in
          Obs.Metrics.observe m_check_ms ms;
          let where =
            if loop = "" then Printf.sprintf "cert %d" id
            else Printf.sprintf "cert %d (%s)" id loop
          in
          match verdict with
          | Ok s ->
            Obs.Metrics.add m_clauses_checked
              (s.Cert.Drat.cnf_clauses + s.Cert.Drat.additions);
            Format.printf
              "%s: VERIFIED — %d cnf clauses, %d proof additions, core [%s]@."
              where s.Cert.Drat.cnf_clauses s.Cert.Drat.additions
              (String.concat ", " names)
          | Error e ->
            incr failed;
            Format.printf "%s: REJECTED — %s@." where e))
      entries;
    Format.printf "%d certificate(s): %d verified, %d rejected@."
      (List.length entries)
      (List.length entries - !failed)
      !failed;
    if !failed = 0 then 0 else 1

let check_proof_cmd =
  let prefix =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"PREFIX"
          ~doc:"Prefix the run was given via --proof: reads $(docv).idx and \
                the spool files it points into.")
  in
  let dump =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump" ] ~docv:"DIR"
          ~doc:"Also write each reconstructed certificate as a standalone \
                certN.cnf / certN.drat pair under $(docv), checkable by any \
                external DRAT checker (or bin/drat_check.exe).")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Print the checking metrics (clauses RUP-checked, per-cert \
                milliseconds) on exit.")
  in
  Cmd.v
    (Cmd.info "check-proof"
       ~doc:"Re-check every certificate of a --proof run with the \
             independent RUP checker")
    Term.(
      const (fun prefix dump stats ->
          let code = check_proof_run prefix dump in
          if stats then Format.eprintf "%a@." Obs.pp_summary ();
          code)
      $ prefix $ dump $ stats)

(* ---- explain ---- *)

let explain_run input =
  match Obs.Analyze.load input with
  | Error msg ->
    Format.eprintf "explain failed: %s: %s@." input msg;
    2
  | Ok records ->
    Format.printf "%a" Obs.Analyze.pp_audit (Obs.Analyze.analyze records);
    0

let explain_cmd =
  let input =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE" ~doc:"JSON-lines trace produced by --trace.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Audit a traced run: per loop, the verdict, the certificates \
             behind its Unsat answers, and the named constraints their \
             cores blame")
    Term.(const explain_run $ input)

(* ---- table ---- *)

let table_run () =
  Format.printf "%a@." Sciduction.Instances.pp_table Sciduction.Instances.table1;
  Format.printf "@.%a@." Sciduction.Instances.pp_table
    Sciduction.Instances.section24;
  0

let table_cmd =
  Cmd.v
    (Cmd.info "table" ~doc:"Print the sciduction instance tables")
    Term.(const table_run $ const ())

(* ---- serve / submit / cancel / shutdown ---- *)

let serve_socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Listen on the Unix-domain socket $(docv). A stale socket \
              file is replaced; a clean shutdown (and SIGTERM) removes \
              it.")

let client_socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "server" ] ~docv:"PATH"
        ~env:(Cmd.Env.info "SCIDUCTION_SERVER")
        ~doc:"Socket of the running verification server.")

let serve_cmd =
  let cache_size =
    Arg.(
      value
      & opt (positive_int_conv "--cache-size") 256
      & info [ "cache-size" ] ~docv:"N"
          ~doc:"Capacity of the content-addressed result cache (LRU \
                entries).")
  in
  let aging =
    Arg.(
      value & opt float 5.0
      & info [ "aging" ] ~docv:"SECONDS"
          ~doc:"Scheduler aging constant: a queued job gains one priority \
                level per $(docv) seconds waited, so low-priority work can \
                never starve.")
  in
  let dispatchers =
    Arg.(
      value
      & opt (some (positive_int_conv "--dispatchers")) None
      & info [ "dispatchers" ] ~docv:"N"
          ~doc:"Jobs executed concurrently. Default: the --jobs pool \
                width, else 1.")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"PATH"
          ~doc:"Write-ahead journal: every accepted submission is fsync'd \
                to $(docv) before its ack, and on restart the journal is \
                replayed — cached verdicts are rebuilt and acked-but- \
                unfinished jobs rerun — so a crash loses no accepted \
                work. A sibling $(docv).lock serializes daemons.")
  in
  let queue_limit =
    Arg.(
      value
      & opt (positive_int_conv "--queue-limit") 64
      & info [ "queue-limit" ] ~docv:"N"
          ~doc:"Admission high watermark: submissions past $(docv) queued \
                jobs are shed with a typed $(b,overloaded) error carrying \
                a retry_after_s hint; sustained shedding degrades the \
                server to cache/warm hits only until the queue drains.")
  in
  let restart_budget =
    Arg.(
      value
      & opt (positive_int_conv "--restart-budget") 2
      & info [ "restart-budget" ] ~docv:"N"
          ~doc:"Times one job may kill its dispatcher before the server \
                stops requeueing it and answers that client a typed \
                $(b,internal_error).")
  in
  let warm_max =
    Arg.(
      value
      & opt (some (positive_int_conv "--warm-max")) None
      & info [ "warm-max" ] ~docv:"N"
          ~doc:"Resident warm-session families (LRU; busy entries are \
                never evicted). Default 8.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the persistent verification server on a Unix socket")
    Term.(
      const (fun obs fault sites socket cache_capacity aging_s dispatchers
                journal queue_limit restart_budget warm_capacity ->
          arm_fault ?sites fault;
          with_obs obs (fun pool ->
              match
                Server.Daemon.start ?pool ?dispatchers ~cache_capacity
                  ~aging_s ?journal ~queue_limit ~restart_budget
                  ?warm_capacity ~socket ()
              with
              | Error msg ->
                Format.eprintf "sciduction_cli: %s@." msg;
                3
              | Ok d ->
                (* first signal begins a graceful shutdown; queued jobs
                   answer shutting_down, in-flight ones cancel at their
                   next budget poll *)
                let stop_on _ = Server.Daemon.request_shutdown d in
                let prev_int =
                  Sys.signal Sys.sigint (Sys.Signal_handle stop_on)
                in
                let prev_term =
                  Sys.signal Sys.sigterm (Sys.Signal_handle stop_on)
                in
                Obs.info "serving on %s@." socket;
                Server.Daemon.wait d;
                Server.Daemon.stop d;
                Sys.set_signal Sys.sigint prev_int;
                Sys.set_signal Sys.sigterm prev_term;
                0))
      $ obs_term $ fault_arg $ fault_sites_arg $ serve_socket_arg
      $ cache_size $ aging $ dispatchers $ journal $ queue_limit
      $ restart_budget $ warm_max)

let submit_cmd =
  let job =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"JOB"
          ~doc:"The job: either a bare kind ($(b,bmc), $(b,cegar), \
                $(b,deobfuscate), $(b,invgen), $(b,lstar), $(b,timing)), \
                meaning that loop with its default parameters, or a JSON \
                object like \
                $(b,{\"kind\":\"bmc\",\"shift\":24,\"max_depth\":30}) \
                whose fields mirror the subcommand's flags.")
  in
  let id =
    Arg.(
      value
      & opt (some string) None
      & info [ "id" ] ~docv:"NAME"
          ~doc:"Name the job (for $(b,cancel)); must be unique among live \
                jobs. Default: a fresh generated name.")
  in
  let priority =
    Arg.(
      value & opt int 0
      & info [ "priority" ] ~docv:"N"
          ~doc:"Scheduling priority; lower runs first (aging prevents \
                starvation).")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Server-side wall-clock budget for this job.")
  in
  let max_conflicts =
    Arg.(
      value
      & opt (some (positive_int_conv "--max-conflicts")) None
      & info [ "max-conflicts" ] ~docv:"N"
          ~doc:"Server-side SAT-conflict budget for this job.")
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:"Submit one job to a running server and print its verdict")
    Term.(
      const (fun server retries job id priority timeout max_conflicts ->
          let parsed =
            match Obs.Json.parse job with
            | Ok j -> Server.Jobs.of_json j
            | Error _ ->
              (* a bare kind is shorthand for {"kind": ...} *)
              Server.Jobs.of_json (Obs.Json.Obj [ ("kind", Obs.Json.String job) ])
          in
          match parsed with
          | Error msg ->
            Format.eprintf "sciduction_cli: bad job: %s@." msg;
            3
          | Ok spec ->
            submit_and_print server ?attempts:retries ?id ~priority ?timeout
              ?max_conflicts spec)
      $ client_socket_arg $ server_retries_arg $ job $ id $ priority
      $ timeout $ max_conflicts)

let cancel_cmd =
  let id =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ID" ~doc:"The job name given at submission.")
  in
  Cmd.v
    (Cmd.info "cancel" ~doc:"Cancel a queued or running job on a server")
    Term.(
      const (fun server id ->
          match Server.Client.cancel ~socket:server ~id with
          | Ok () -> 0
          | Error msg ->
            Format.eprintf "sciduction_cli: %s@." msg;
            3)
      $ client_socket_arg $ id)

let shutdown_cmd =
  Cmd.v
    (Cmd.info "shutdown" ~doc:"Ask a running server to shut down cleanly")
    Term.(
      const (fun server ->
          match Server.Client.shutdown ~socket:server () with
          | Ok () -> 0
          | Error msg ->
            Format.eprintf "sciduction_cli: %s@." msg;
            3)
      $ client_socket_arg)

let () =
  let doc = "sciduction: induction + deduction + structure hypotheses" in
  exit
    (Cmd.eval'
       (Cmd.group
          (Cmd.info "sciduction_cli" ~doc)
          [
            deobfuscate_cmd; timing_cmd; transmission_cmd; cegar_cmd;
            bmc_cmd; invgen_cmd; lstar_cmd; table_cmd; run_cmd;
            export_chrome_cmd; report_cmd; stats_cmd; check_proof_cmd;
            explain_cmd; serve_cmd; submit_cmd; cancel_cmd; shutdown_cmd;
          ]))
