(* Trace analytics over JSON-lines telemetry traces: per-loop
   convergence diagnostics, a span flame profile, and a regression diff
   against a second trace or a saved baseline JSON.

     trace_report TRACE.jsonl                          # human report
     trace_report TRACE.jsonl --json                   # machine summary
     trace_report TRACE.jsonl --against OLD.jsonl      # diff two traces
     trace_report TRACE.jsonl --baseline summary.json  # diff vs baseline

   Thresholds for the diff (current/baseline ratios) are configurable:
   --max-seconds-ratio, --max-conflicts-ratio, --max-propagations-ratio,
   --max-iterations-ratio, --max-solves-ratio, --min-seconds.

   Exit codes: 0 pass, 1 regression beyond a threshold, 2 usage or
   malformed input. *)

module Analyze = Obs.Analyze

let usage () =
  prerr_endline
    "usage: trace_report TRACE.jsonl [--json] [--top N]\n\
    \       [--against TRACE2.jsonl | --baseline SUMMARY.json]\n\
    \       [--max-seconds-ratio R] [--max-conflicts-ratio R]\n\
    \       [--max-propagations-ratio R] [--max-iterations-ratio R]\n\
    \       [--max-solves-ratio R] [--min-seconds S]";
  exit 2

let () =
  let path = ref None in
  let json = ref false in
  let top = ref 12 in
  let against = ref None in
  let baseline = ref None in
  let th = ref Analyze.default_thresholds in
  let float_arg name v k rest =
    match float_of_string_opt v with
    | Some f when f > 0.0 ->
      k f;
      rest
    | _ ->
      Printf.eprintf "trace_report: %s expects a positive number, got %S\n"
        name v;
      exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--json" :: rest ->
      json := true;
      parse rest
    | "--top" :: v :: rest -> (
      match int_of_string_opt v with
      | Some n when n > 0 ->
        top := n;
        parse rest
      | _ ->
        prerr_endline "trace_report: --top expects a positive integer";
        exit 2)
    | "--against" :: v :: rest ->
      against := Some v;
      parse rest
    | "--baseline" :: v :: rest ->
      baseline := Some v;
      parse rest
    | "--max-seconds-ratio" :: v :: rest ->
      parse (float_arg "--max-seconds-ratio" v (fun f -> th := { !th with Analyze.seconds = f }) rest)
    | "--max-conflicts-ratio" :: v :: rest ->
      parse (float_arg "--max-conflicts-ratio" v (fun f -> th := { !th with Analyze.conflicts = f }) rest)
    | "--max-propagations-ratio" :: v :: rest ->
      parse (float_arg "--max-propagations-ratio" v (fun f -> th := { !th with Analyze.propagations = f }) rest)
    | "--max-iterations-ratio" :: v :: rest ->
      parse (float_arg "--max-iterations-ratio" v (fun f -> th := { !th with Analyze.iterations = f }) rest)
    | "--max-solves-ratio" :: v :: rest ->
      parse (float_arg "--max-solves-ratio" v (fun f -> th := { !th with Analyze.solves = f }) rest)
    | "--min-seconds" :: v :: rest ->
      parse (float_arg "--min-seconds" v (fun f -> th := { !th with Analyze.min_seconds = f }) rest)
    | ("--top" | "--against" | "--baseline" | "--max-seconds-ratio"
      | "--max-conflicts-ratio" | "--max-propagations-ratio"
      | "--max-iterations-ratio" | "--max-solves-ratio" | "--min-seconds")
      :: [] ->
      usage ()
    | arg :: _ when String.length arg > 2 && String.sub arg 0 2 = "--" ->
      Printf.eprintf "trace_report: unknown option %s\n" arg;
      usage ()
    | arg :: rest ->
      (match !path with
      | None -> path := Some arg
      | Some _ ->
        prerr_endline "trace_report: exactly one trace file expected";
        exit 2);
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let path = match !path with Some p -> p | None -> usage () in
  match
    Analyze.run_report ~top:!top ~json:!json ?against:!against
      ?baseline:!baseline ~thresholds:!th path
  with
  | Ok code -> exit code
  | Error msg ->
    Printf.eprintf "trace_report: %s\n" msg;
    exit 2
